//! The fabric's filesystem seam and deterministic fault injection.
//!
//! Every filesystem operation the sweep fabric performs — the
//! [`crate::cache::ResultCache`] writing store entries, the
//! [`crate::queue::JobQueue`] renaming tasks between its state
//! directories — goes through the [`Fs`] trait instead of calling
//! `std::fs` directly (an a4-lint `fs-seam` finding enforces this for
//! the store files). Production code uses the zero-cost [`RealFs`];
//! chaos tests and the `A4_FAULTS` knob swap in a [`FaultFs`] that
//! consumes a SplitMix64-derived schedule of injected faults:
//!
//! * **write failures** — ENOSPC-style errors before any byte lands;
//! * **torn writes** — a prefix of the payload lands, then the write
//!   errors (what a crash mid-`write(2)` leaves behind);
//! * **rename failures** — the atomic publish/claim/complete step
//!   errors without moving the file;
//! * **crashes** — at a chosen mutating-op ordinal the operation either
//!   applies or not (one more schedule bit), the op returns an error,
//!   and every later operation fails: the process state a `kill -9`
//!   leaves at that exact boundary.
//!
//! The schedule is a pure function of `(seed, op ordinal)`, so a failing
//! chaos run replays bit-for-bit from its seed. Injection caps the
//! number of *consecutive* faults below the retry budget
//! ([`Backoff::attempts`]), so a retried operation always eventually
//! succeeds — chaos runs converge to the same store contents as
//! fault-free runs, which is exactly the crash-consistency claim the
//! end-to-end test pins.
//!
//! [`FabricHealth`] aggregates the degradation counters the fabric
//! keeps (store write failures, quarantined entries, retries, reclaimed
//! leases, poisoned tasks) into the one-line summary the CLI prints.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// The filesystem operations the sweep fabric uses, as a seam.
///
/// Implementations must be shareable across the sweep threads
/// (`Send + Sync`); [`RealFs`] delegates straight to `std::fs`.
pub trait Fs: fmt::Debug + Send + Sync {
    /// Writes `contents` to `path`, replacing any existing file.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Renames `from` to `to` (the fabric's atomicity primitive).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads `path` to a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// The file names inside `dir` (no paths, no ordering guarantee).
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Sets `path`'s modification time to now (lease heartbeats, store
    /// entry refreshes).
    fn touch(&self, path: &Path) -> io::Result<()>;

    /// The file's modification time.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;

    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Fs`]: plain `std::fs` calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Fs for RealFs {
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        Ok(std::fs::read_dir(dir)?
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn touch(&self, path: &Path) -> io::Result<()> {
        std::fs::File::options()
            .append(true)
            .open(path)?
            .set_modified(SystemTime::now())
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        std::fs::metadata(path)?.modified()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// SplitMix64: the schedule generator (same mixer as
/// [`crate::runner::derive_seed`], reused so one seed vocabulary covers
/// both sweeps and fault schedules).
// a4-lint: allow-fn(counter-safety) -- SplitMix64 mixer: wrapping arithmetic is the hash, not a counter
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic fault schedule: which operations of a [`FaultFs`]
/// fail, and how.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Schedule seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Percent of mutating operations that draw a fault (before the
    /// consecutive cap), `0..=100`.
    pub fail_pct: u8,
    /// Never inject more than this many faults in a row; the next
    /// operation after a capped run always succeeds. Keep this below
    /// the retry budget ([`Backoff::attempts`]) so retried operations
    /// converge.
    pub max_consecutive: u32,
    /// If set, mutating operation number `n` (0-based) crashes: the op
    /// half-applies per one more schedule bit, errors, and every later
    /// operation on this handle fails.
    pub crash_at: Option<u64>,
}

impl FaultPlan {
    /// The standard chaos plan for `seed`: 25% fault rate, at most 2
    /// consecutive, no scripted crash.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            fail_pct: 25,
            max_consecutive: 2,
            crash_at: None,
        }
    }

    /// A plan whose only event is a crash at mutating op `n`.
    pub fn crash_only(seed: u64, n: u64) -> Self {
        FaultPlan {
            seed,
            fail_pct: 0,
            max_consecutive: 0,
            crash_at: Some(n),
        }
    }
}

#[derive(Debug)]
struct FaultState {
    /// Mutating operations seen so far (the schedule index).
    op: u64,
    /// Injected faults in the current run.
    consecutive: u32,
    /// A crash fired: every subsequent operation fails.
    dead: bool,
}

/// An [`Fs`] wrapper injecting the [`FaultPlan`]'s schedule over an
/// inner filesystem (normally [`RealFs`]).
///
/// Only *mutating* operations (`write`, `rename`, `remove_file`,
/// `touch`) consume schedule slots; reads and scans pass through, so a
/// fault schedule is stable under extra diagnostics.
#[derive(Debug)]
pub struct FaultFs {
    plan: FaultPlan,
    inner: RealFs,
    state: Mutex<FaultState>,
    injected: AtomicU64,
}

/// What the schedule says about one mutating operation.
enum Verdict {
    Proceed,
    Fail,
    /// Crash; `true` = apply the operation's effect first.
    Crash(bool),
}

impl FaultFs {
    /// A fault-injecting filesystem over [`RealFs`].
    pub fn new(plan: FaultPlan) -> Self {
        FaultFs {
            plan,
            inner: RealFs,
            state: Mutex::new(FaultState {
                op: 0,
                consecutive: 0,
                dead: false,
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// Reads the `A4_FAULTS` environment knob: a decimal or `0x`-hex
    /// schedule seed. Returns `None` when unset or unparseable (the
    /// fabric must never fail to *start* because of a chaos knob).
    pub fn from_env() -> Option<Arc<Self>> {
        let raw = std::env::var("A4_FAULTS").ok()?;
        let seed = parse_seed(&raw)?;
        Some(Arc::new(FaultFs::new(FaultPlan::chaos(seed))))
    }

    /// Faults injected so far (including the crash, if it fired).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.lock().dead
    }

    /// The schedule state; recovers from poisoning (a panicking sweep
    /// thread must not wedge the chaos harness).
    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn injected_error(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    /// Advances the schedule one mutating op and decides its fate.
    fn decide(&self) -> Verdict {
        let mut st = self.lock();
        if st.dead {
            return Verdict::Fail;
        }
        let op = st.op;
        st.op += 1;
        // a4-lint: allow(counter-safety) -- golden-ratio stride decorrelates per-op schedule words; hash math, not a counter
        let word = splitmix64(self.plan.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if self.plan.crash_at == Some(op) {
            st.dead = true;
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Verdict::Crash(word & 1 == 1);
        }
        let draw = (word >> 8) % 100;
        if draw < u64::from(self.plan.fail_pct) && st.consecutive < self.plan.max_consecutive {
            st.consecutive += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
            Verdict::Fail
        } else {
            st.consecutive = 0;
            Verdict::Proceed
        }
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

impl Fs for FaultFs {
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        match self.decide() {
            Verdict::Proceed => self.inner.write(path, contents),
            Verdict::Fail => {
                // Half the failures are torn: a prefix lands before the
                // error, exactly what a crash mid-write leaves on disk.
                let word = splitmix64(self.plan.seed ^ self.injected());
                if word & 1 == 1 && !contents.is_empty() {
                    let torn = &contents[..contents.len() / 2];
                    self.inner.write(path, torn).ok();
                    Err(self.injected_error("torn write"))
                } else {
                    Err(self.injected_error("write failed (disk full)"))
                }
            }
            Verdict::Crash(applied) => {
                if applied {
                    self.inner.write(path, contents).ok();
                }
                Err(self.injected_error("crash during write"))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide() {
            Verdict::Proceed => self.inner.rename(from, to),
            Verdict::Fail => Err(self.injected_error("rename failed")),
            Verdict::Crash(applied) => {
                if applied {
                    self.inner.rename(from, to).ok();
                }
                Err(self.injected_error("crash during rename"))
            }
        }
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.crashed() {
            return Err(self.injected_error("crashed"));
        }
        self.inner.read_to_string(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        if self.crashed() {
            return Err(self.injected_error("crashed"));
        }
        self.inner.read_dir_names(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation is idempotent bootstrap, not a consistency
        // boundary; crashing it just prevents the test from starting.
        if self.crashed() {
            return Err(self.injected_error("crashed"));
        }
        self.inner.create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.decide() {
            Verdict::Proceed => self.inner.remove_file(path),
            Verdict::Fail => Err(self.injected_error("remove failed")),
            Verdict::Crash(applied) => {
                if applied {
                    self.inner.remove_file(path).ok();
                }
                Err(self.injected_error("crash during remove"))
            }
        }
    }

    fn touch(&self, path: &Path) -> io::Result<()> {
        match self.decide() {
            Verdict::Proceed => self.inner.touch(path),
            Verdict::Fail => Err(self.injected_error("touch failed")),
            Verdict::Crash(applied) => {
                if applied {
                    self.inner.touch(path).ok();
                }
                Err(self.injected_error("crash during touch"))
            }
        }
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        if self.crashed() {
            return Err(self.injected_error("crashed"));
        }
        self.inner.modified(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.crashed() && self.inner.exists(path)
    }
}

/// Bounded, deterministic, capped exponential backoff for transient
/// fabric errors: attempt `n` sleeps `min(base << n, cap)` before
/// retrying. No jitter — retry timing must replay like everything else
/// here, and the queue's claim-by-rename needs no contention spreading
/// (losers of a race move on, they do not retry the same file).
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First retry delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Total attempts (the first try plus `attempts - 1` retries).
    pub attempts: u32,
}

impl Backoff {
    /// The fabric default: 4 attempts at 10 ms, 20 ms, 40 ms — strictly
    /// more attempts than [`FaultPlan::chaos`]'s consecutive-fault cap,
    /// so injected transients always clear within one retry run.
    pub fn fabric() -> Self {
        Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            attempts: 4,
        }
    }

    /// A no-wait variant for tests (same attempt budget, zero sleeps).
    pub fn immediate() -> Self {
        Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            attempts: 4,
        }
    }

    /// The delay before retry `attempt` (0-based): `min(base << attempt,
    /// cap)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let shifted = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        shifted.min(self.cap)
    }

    /// Runs `op` up to [`Backoff::attempts`] times, sleeping
    /// [`Backoff::delay`] between attempts and counting every retry
    /// into `retries`. Returns the first success or the last error.
    ///
    /// # Errors
    ///
    /// The final attempt's error when every attempt fails.
    pub fn retry<T, E>(
        &self,
        retries: &mut u64,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut last = op();
        let mut attempt = 0;
        while last.is_err() && attempt + 1 < attempts {
            std::thread::sleep(self.delay(attempt));
            *retries += 1;
            attempt += 1;
            last = op();
        }
        last
    }
}

/// The fabric's degradation counters, aggregated for the CLI's one-line
/// summary. All zeros means the run saw a perfectly healthy facility.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FabricHealth {
    /// Store entries that failed to write (after retries) — the sweep
    /// degraded to never-caching for those cells.
    pub store_write_failures: u64,
    /// Store entries whose checksum mismatched on load, moved to
    /// `<store>/corrupt/`.
    pub quarantined: u64,
    /// Transient-error retries across store and queue operations.
    pub retries: u64,
    /// Stale leases bounced back to `pending/`.
    pub reclaimed_leases: u64,
    /// Unparseable tasks quarantined under `queue/poison/`.
    pub poisoned_tasks: u64,
    /// Well-formed tasks quarantined after exhausting their attempt
    /// budget (kept failing to execute) — distinct from parse-poison.
    pub exhausted_tasks: u64,
    /// Sweep cells that failed (panic, build error, watchdog abort)
    /// instead of producing a result.
    pub cell_failures: u64,
    /// Lease heartbeats that failed.
    pub heartbeat_failures: u64,
    /// Faults injected by an active [`FaultFs`] (zero in production).
    pub injected_faults: u64,
}

impl FabricHealth {
    /// Whether every counter is zero.
    pub fn healthy(&self) -> bool {
        *self == FabricHealth::default()
    }
}

impl fmt::Display for FabricHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: store-write-failures={} quarantined={} retries={} \
             reclaimed-leases={} poisoned-tasks={} exhausted-tasks={} \
             cell-failures={} heartbeat-failures={}",
            if self.healthy() {
                "healthy"
            } else {
                "degraded"
            },
            self.store_write_failures,
            self.quarantined,
            self.retries,
            self.reclaimed_leases,
            self.poisoned_tasks,
            self.exhausted_tasks,
            self.cell_failures,
            self.heartbeat_failures,
        )?;
        if self.injected_faults > 0 {
            write!(f, " injected-faults={}", self.injected_faults)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a4-fault-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_fs_round_trips() {
        let dir = tmp("real");
        let fs = RealFs;
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        fs.write(&a, b"payload").unwrap();
        assert!(fs.exists(&a));
        fs.rename(&a, &b).unwrap();
        assert_eq!(fs.read_to_string(&b).unwrap(), "payload");
        assert_eq!(fs.read_dir_names(&dir).unwrap(), vec!["b.txt"]);
        let before = fs.modified(&b).unwrap();
        fs.touch(&b).unwrap();
        assert!(fs.modified(&b).unwrap() >= before);
        fs.remove_file(&b).unwrap();
        assert!(!fs.exists(&b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedules_are_deterministic_and_capped() {
        let dir = tmp("sched");
        let run = |seed: u64| {
            let fs = FaultFs::new(FaultPlan::chaos(seed));
            let mut outcomes = Vec::new();
            let mut consecutive = 0u32;
            let mut worst = 0u32;
            for i in 0..200 {
                let p = dir.join(format!("f{i}"));
                let ok = fs.write(&p, b"x").is_ok();
                outcomes.push(ok);
                if ok {
                    consecutive = 0;
                } else {
                    consecutive += 1;
                    worst = worst.max(consecutive);
                }
            }
            (outcomes, worst, fs.injected())
        };
        let (a, worst, injected) = run(0xA4);
        let (b, _, _) = run(0xA4);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(injected > 0, "25% of 200 ops injects something");
        assert!(
            worst <= FaultPlan::chaos(0).max_consecutive,
            "consecutive cap holds ({worst})"
        );
        let (c, _, _) = run(0x77);
        assert_ne!(a, c, "different seed, different schedule");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_kills_the_handle_and_half_applies() {
        let dir = tmp("crash");
        // Find both crash polarities across seeds: with and without the
        // rename applied.
        let mut seen = [false, false];
        for seed in 0..16u64 {
            let src = dir.join(format!("src-{seed}"));
            let dst = dir.join(format!("dst-{seed}"));
            std::fs::write(&src, "x").unwrap();
            let fs = FaultFs::new(FaultPlan::crash_only(seed, 0));
            assert!(fs.rename(&src, &dst).is_err(), "crash op always errors");
            assert!(fs.crashed());
            assert!(
                fs.write(&dir.join("later"), b"x").is_err(),
                "dead after crash"
            );
            let applied = dst.exists();
            assert_ne!(applied, src.exists(), "exactly one side exists");
            seen[usize::from(applied)] = true;
        }
        assert_eq!(seen, [true, true], "both crash polarities reachable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_delays_are_capped_and_retry_converges() {
        let b = Backoff::fabric();
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(31), Duration::from_millis(200), "cap holds");
        assert_eq!(b.delay(63), Duration::from_millis(200), "shift overflow ok");

        let mut retries = 0;
        let mut calls = 0;
        let out: Result<u32, &str> = Backoff::immediate().retry(&mut retries, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(retries, 2, "two retries before success");

        let mut retries = 0;
        let out: Result<u32, &str> = Backoff::immediate().retry(&mut retries, || Err("hard"));
        assert_eq!(out, Err("hard"));
        assert_eq!(retries, 3, "budget exhausted");
    }

    #[test]
    fn health_summarizes_and_detects_degradation() {
        let h = FabricHealth::default();
        assert!(h.healthy());
        assert!(h.to_string().starts_with("healthy"));
        let d = FabricHealth {
            store_write_failures: 2,
            injected_faults: 5,
            ..FabricHealth::default()
        };
        assert!(!d.healthy());
        let text = d.to_string();
        assert!(text.starts_with("degraded"), "{text}");
        assert!(text.contains("store-write-failures=2"), "{text}");
        assert!(text.contains("injected-faults=5"), "{text}");
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("164"), Some(164));
        assert_eq!(parse_seed("0xA4"), Some(0xA4));
        assert_eq!(parse_seed(" 0X10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
    }
}
