//! Fig. 11: microbenchmark evaluation — IPC and LLC hit rates of the
//! three X-Mem variants vs network packet size under Default / Isolate /
//! A4.
//!
//! Setup (§7.1): DPDK-T (HPW, 4 cores) joins FIO (LPW, 4 cores, 2 MB
//! blocks) and X-Mem 1 (HPW) / X-Mem 2 (LPW) / X-Mem 3 (LPW, detected
//! antagonist); packet size swept 64 B to 1514 B.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;

/// The swept packet sizes in bytes.
pub const PACKET_BYTES: [u64; 6] = [64, 128, 256, 512, 1024, 1514];

/// The §7.1 mix as one declarative cell.
pub fn mix_spec(opts: &RunOpts, scheme: Scheme, packet_bytes: u64, block_kib: u64) -> ScenarioSpec {
    ScenarioSpec::new(
        format!(
            "fig11 mix {}B {}KB {}",
            packet_bytes,
            block_kib,
            scheme.label()
        ),
        *opts,
    )
    .with_nic(4, packet_bytes)
    .with_ssd()
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_workload(
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib,
        },
        &[4, 5, 6, 7],
        Priority::Low,
    )
    .with_workload(
        "xmem1",
        WorkloadSpec::XMem { instance: 1 },
        &[8, 9],
        Priority::High,
    )
    .with_workload(
        "xmem2",
        WorkloadSpec::XMem { instance: 2 },
        &[10],
        Priority::Low,
    )
    .with_workload(
        "xmem3",
        WorkloadSpec::XMem { instance: 3 },
        &[11],
        Priority::Low,
    )
    .with_scheme(scheme)
}

/// Builds the §7.1 mix and runs it under `scheme`.
pub fn run_mix(opts: &RunOpts, scheme: Scheme, packet_bytes: u64, block_kib: u64) -> ScenarioRun {
    mix_spec(opts, scheme, packet_bytes, block_kib)
        .build()
        .expect("static fig11 layout")
        .run()
}

/// The packet × scheme grid (packet size slowest).
pub fn grid() -> TypedSweep2<u64, Scheme> {
    TypedSweep2::new(
        TypedAxis::new("packet_bytes", PACKET_BYTES.map(|p| (p, format!("{p}B")))),
        TypedAxis::new("scheme", Scheme::main_three().map(|s| (s, s.label()))),
    )
}

/// All cells of the figure: packet size major, scheme minor.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid().map(|&pkt, &scheme| mix_spec(opts, scheme, pkt, 2048))
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut columns = Vec::new();
    for scheme in &grid.b.labels {
        for xm in ["xmem1", "xmem2", "xmem3"] {
            columns.push(format!("{scheme}_{xm}_ipc"));
            columns.push(format!("{scheme}_{xm}_hit"));
        }
    }
    let mut table = Table::new(
        "fig11",
        "X-Mem IPC and LLC hit rates vs packet size",
        columns,
    );
    for (chunk, label) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let mut row = Vec::new();
        for run in chunk {
            for xm in ["xmem1", "xmem2", "xmem3"] {
                row.push(run.ipc(xm));
                row.push(run.llc_hit_rate(xm));
            }
        }
        table.push(label.clone(), row);
    }
    table
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`: per packet
/// size, per scheme, IPC and LLC hit rate of each X-Mem.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig11 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn a4_protects_the_hpw_xmem() {
        let opts = RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        };
        let default_run = run_mix(&opts, Scheme::Default, 1024, 2048);
        let a4_run = run_mix(&opts, Scheme::A4(FeatureLevel::D), 1024, 2048);
        let ipc_default = default_run.ipc("xmem1");
        let ipc_a4 = a4_run.ipc("xmem1");
        assert!(
            ipc_a4 > ipc_default,
            "A4 speeds up the cache-sensitive HPW: default={ipc_default:.3} a4={ipc_a4:.3}"
        );
        let hit_a4 = a4_run.llc_hit_rate("xmem1");
        let hit_default = default_run.llc_hit_rate("xmem1");
        assert!(
            hit_a4 > hit_default,
            "A4 raises the HPW hit rate: default={hit_default:.3} a4={hit_a4:.3}"
        );
    }
}
