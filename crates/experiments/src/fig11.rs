//! Fig. 11: microbenchmark evaluation — IPC and LLC hit rates of the
//! three X-Mem variants vs network packet size under Default / Isolate /
//! A4.
//!
//! Setup (§7.1): DPDK-T (HPW, 4 cores) joins FIO (LPW, 4 cores, 2 MB
//! blocks) and X-Mem 1 (HPW) / X-Mem 2 (LPW) / X-Mem 3 (LPW, detected
//! antagonist); packet size swept 64 B to 1514 B.

use crate::scenario::{self, RunOpts, Scheme};
use crate::table::Table;
use a4_core::{Harness, RunReport};
use a4_model::{Priority, WorkloadId};

/// The swept packet sizes in bytes.
pub const PACKET_BYTES: [u64; 6] = [64, 128, 256, 512, 1024, 1514];

/// Ids of interest from one run.
#[derive(Debug, Clone, Copy)]
pub struct MixIds {
    /// DPDK-T.
    pub dpdk: WorkloadId,
    /// FIO.
    pub fio: WorkloadId,
    /// X-Mem 1 (HPW).
    pub xmem1: WorkloadId,
    /// X-Mem 2 (LPW).
    pub xmem2: WorkloadId,
    /// X-Mem 3 (LPW antagonist).
    pub xmem3: WorkloadId,
}

/// Builds the §7.1 mix and runs it under `scheme`.
pub fn run_mix(
    opts: &RunOpts,
    scheme: Scheme,
    packet_bytes: u64,
    block_kib: u64,
) -> (RunReport, MixIds) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, packet_bytes).expect("port free");
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let blk = scenario::block_lines(&sys, block_kib);
    let fio =
        scenario::add_fio(&mut sys, ssd, blk, &[4, 5, 6, 7], Priority::Low).expect("cores free");
    let xmem1 = scenario::add_xmem(&mut sys, 1, &[8, 9], Priority::High).expect("cores free");
    let xmem2 = scenario::add_xmem(&mut sys, 2, &[10], Priority::Low).expect("cores free");
    let xmem3 = scenario::add_xmem(&mut sys, 3, &[11], Priority::Low).expect("cores free");
    let mut harness = Harness::new(sys);
    harness.attach_policy(scheme.policy());
    let report = harness.run(opts.warmup, opts.measure);
    (
        report,
        MixIds {
            dpdk,
            fio,
            xmem1,
            xmem2,
            xmem3,
        },
    )
}

/// Runs the full figure: per packet size, per scheme, IPC and LLC hit
/// rate of each X-Mem.
pub fn run(opts: &RunOpts) -> Table {
    let mut columns = Vec::new();
    for scheme in Scheme::main_three() {
        for xm in ["xmem1", "xmem2", "xmem3"] {
            columns.push(format!("{}_{}_ipc", scheme.label(), xm));
            columns.push(format!("{}_{}_hit", scheme.label(), xm));
        }
    }
    let mut table = Table::new(
        "fig11",
        "X-Mem IPC and LLC hit rates vs packet size",
        columns,
    );
    for pkt in PACKET_BYTES {
        let mut row = Vec::new();
        for scheme in Scheme::main_three() {
            let (report, ids) = run_mix(opts, scheme, pkt, 2048);
            for id in [ids.xmem1, ids.xmem2, ids.xmem3] {
                row.push(report.ipc(id));
                row.push(report.llc_hit_rate(id));
            }
        }
        table.push(format!("{pkt}B"), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn a4_protects_the_hpw_xmem() {
        let opts = RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        };
        let (default_report, ids_d) = run_mix(&opts, Scheme::Default, 1024, 2048);
        let (a4_report, ids_a) = run_mix(&opts, Scheme::A4(FeatureLevel::D), 1024, 2048);
        let ipc_default = default_report.ipc(ids_d.xmem1);
        let ipc_a4 = a4_report.ipc(ids_a.xmem1);
        assert!(
            ipc_a4 > ipc_default,
            "A4 speeds up the cache-sensitive HPW: default={ipc_default:.3} a4={ipc_a4:.3}"
        );
        let hit_a4 = a4_report.llc_hit_rate(ids_a.xmem1);
        let hit_default = default_report.llc_hit_rate(ids_d.xmem1);
        assert!(
            hit_a4 > hit_default,
            "A4 raises the HPW hit rate: default={hit_default:.3} a4={hit_a4:.3}"
        );
    }
}
