//! Fig. 5: storage-I/O characteristics — throughput is insensitive to
//! DCA, while memory read bandwidth stays high even with DCA on (the DMA
//! leak of observation O2's groundwork).
//!
//! Setup (§3.2): FIO alone, 4 threads, random read, `O_DIRECT`, QD 32
//! total, block size swept 4 KB – 2 MB (scaled), DCA on vs off.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;

/// The paper's block-size axis in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// One cell: FIO alone at `block_kib` with the SSD's DCA at `dca_on`.
pub fn spec(opts: &RunOpts, block_kib: u64, dca_on: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        format!(
            "fig5 {block_kib}KB dca={}",
            if dca_on { "on" } else { "off" }
        ),
        *opts,
    )
    .with_ssd()
    .with_workload(
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib,
        },
        &[0, 1, 2, 3],
        Priority::Low,
    )
    .with_device_dca("ssd", dca_on)
}

/// The block × DCA grid (block slowest, on before off).
pub fn grid() -> TypedSweep2<u64, bool> {
    TypedSweep2::new(
        TypedAxis::new("block_kib", BLOCK_KIB.map(|k| (k, format!("{k}KB")))),
        TypedAxis::new("dca", [(true, "on"), (false, "off")]),
    )
}

/// All cells, block-major then DCA on/off.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid().map(|&kib, &dca_on| spec(opts, kib, dca_on))
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut table = Table::new(
        "fig5a",
        "storage throughput and memory read bandwidth vs block size",
        ["tp_dca_on", "mem_rd_dca_on", "tp_dca_off", "mem_rd_dca_off"],
    );
    for (pair, label) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let (on, off) = (&pair[0], &pair[1]);
        table.push(
            label.clone(),
            [
                on.io_gbps("fio"),
                on.mem_read_gbps(),
                off.io_gbps("fio"),
                off.mem_read_gbps(),
            ],
        );
    }
    table
}

/// One configuration: returns `(storage_gbps, mem_read_gbps)`.
pub fn run_point(opts: &RunOpts, block_kib: u64, dca_on: bool) -> (f64, f64) {
    let run = spec(opts, block_kib, dca_on)
        .build()
        .expect("static fig5 layout")
        .run();
    (run.io_gbps("fio"), run.mem_read_gbps())
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig5 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dca_does_not_change_large_block_throughput() {
        let opts = RunOpts::quick();
        let (tp_on, _) = run_point(&opts, 512, true);
        let (tp_off, _) = run_point(&opts, 512, false);
        let ratio = tp_on / tp_off.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "storage throughput insensitive to DCA: on={tp_on:.2} off={tp_off:.2}"
        );
    }

    #[test]
    fn large_blocks_leak_despite_dca() {
        let opts = RunOpts::quick();
        // With DCA on, big blocks overflow the 2 DCA ways long before the
        // cores consume them, so memory reads stay substantial.
        let (tp, mem_rd) = run_point(&opts, 1024, true);
        assert!(tp > 0.0);
        assert!(
            mem_rd > 0.1 * tp,
            "DMA leak refetches from memory: tp={tp:.2} rd={mem_rd:.2}"
        );
    }

    #[test]
    fn throughput_grows_with_block_size_then_saturates() {
        let opts = RunOpts::quick();
        let (tp_small, _) = run_point(&opts, 4, true);
        let (tp_big, _) = run_point(&opts, 256, true);
        assert!(tp_big > tp_small, "IOPS-bound 4KB vs link-bound 256KB");
    }
}
