//! Fig. 5: storage-I/O characteristics — throughput is insensitive to
//! DCA, while memory read bandwidth stays high even with DCA on (the DMA
//! leak of observation O2's groundwork).
//!
//! Setup (§3.2): FIO alone, 4 threads, random read, `O_DIRECT`, QD 32
//! total, block size swept 4 KB – 2 MB (scaled), DCA on vs off.

use crate::scenario::{self, RunOpts};
use crate::table::Table;
use a4_core::Harness;
use a4_model::Priority;

/// The paper's block-size axis in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// One configuration: returns `(storage_gbps, mem_read_gbps)`.
pub fn run_point(opts: &RunOpts, block_kib: u64, dca_on: bool) -> (f64, f64) {
    let mut sys = scenario::base_system(opts);
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let lines = scenario::block_lines(&sys, block_kib);
    let fio =
        scenario::add_fio(&mut sys, ssd, lines, &[0, 1, 2, 3], Priority::Low).expect("cores free");
    sys.set_device_dca(ssd, dca_on).expect("attached");
    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let secs = report.samples.len() as f64 * 1e-3; // logical second = 1 ms
    let storage_gbps = report.total_io_bytes(fio) as f64 / secs / 1e9;
    (storage_gbps, report.mem_read_gbps())
}

/// Runs the full figure.
pub fn run(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig5a",
        "storage throughput and memory read bandwidth vs block size",
        ["tp_dca_on", "mem_rd_dca_on", "tp_dca_off", "mem_rd_dca_off"],
    );
    for kib in BLOCK_KIB {
        let (tp_on, rd_on) = run_point(opts, kib, true);
        let (tp_off, rd_off) = run_point(opts, kib, false);
        table.push(format!("{kib}KB"), [tp_on, rd_on, tp_off, rd_off]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dca_does_not_change_large_block_throughput() {
        let opts = RunOpts::quick();
        let (tp_on, _) = run_point(&opts, 512, true);
        let (tp_off, _) = run_point(&opts, 512, false);
        let ratio = tp_on / tp_off.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "storage throughput insensitive to DCA: on={tp_on:.2} off={tp_off:.2}"
        );
    }

    #[test]
    fn large_blocks_leak_despite_dca() {
        let opts = RunOpts::quick();
        // With DCA on, big blocks overflow the 2 DCA ways long before the
        // cores consume them, so memory reads stay substantial.
        let (tp, mem_rd) = run_point(&opts, 1024, true);
        assert!(tp > 0.0);
        assert!(
            mem_rd > 0.1 * tp,
            "DMA leak refetches from memory: tp={tp:.2} rd={mem_rd:.2}"
        );
    }

    #[test]
    fn throughput_grows_with_block_size_then_saturates() {
        let opts = RunOpts::quick();
        let (tp_small, _) = run_point(&opts, 4, true);
        let (tp_big, _) = run_point(&opts, 256, true);
        assert!(tp_big > tp_small, "IOPS-bound 4KB vs link-bound 256KB");
    }
}
