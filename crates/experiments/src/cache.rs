//! Content-addressed on-disk caching of sweep results.
//!
//! Every experiment cell is fully described by its serialized
//! [`ScenarioSpec`] (which embeds the [`crate::spec::RunOpts`] protocol
//! and seed), so the pair *(code version, spec JSON)* determines the
//! [`RunReport`] bit for bit — the simulator is deterministic. A
//! [`ResultCache`] therefore stores each report under a hash of exactly
//! that pair:
//!
//! * re-running a figure after editing one cell re-simulates only the
//!   changed cell;
//! * an interrupted paper-length sweep resumes where it stopped
//!   (completed cells are on disk);
//! * a warm re-run of an unchanged sweep reads every cell from disk and
//!   rebuilds byte-identical tables in a small fraction of the cold
//!   wall-clock.
//!
//! The key embeds [`CODE_SALT`]; bump its revision suffix whenever a
//! change alters simulation *behaviour* (counters, victim picks, event
//! order). Pure-speed refactors that keep reports byte-identical may
//! keep the salt.
//!
//! # Integrity and failure model
//!
//! Entries are stored as a checksummed envelope
//! `{"payload_fnv": <`[`content_key`]` of the report JSON>, "report":
//! <report>}` and written via a temp-file rename, so an interrupted
//! writer never leaves a torn entry. On load, three failure classes are
//! distinguished:
//!
//! * **unreadable / unparseable** (torn tmp promoted by a buggy tool,
//!   pre-envelope legacy entries) — a plain miss, re-simulated and
//!   rewritten;
//! * **parseable but checksum-mismatched** (a bit-flip that still reads
//!   as JSON) — *quarantined* to `<store>/corrupt/` and counted, never
//!   silently served as truth and never silently deleted;
//! * **store write failures** (disk full, permissions) — retried with
//!   [`Backoff::fabric`], then counted and warned once per process: the
//!   sweep degrades to never-caching, visibly.
//!
//! All filesystem access goes through the [`Fs`] seam (enforced by the
//! `fs-seam` lint rule), so chaos tests drive these paths with a
//! seeded [`crate::fault::FaultFs`].

use crate::fault::{Backoff, Fs, RealFs};
use crate::spec::ScenarioSpec;
use a4_core::RunReport;
use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Version salt mixed into every cache key: crate version plus a manual
/// behaviour revision. Bump the `rN` suffix when simulation behaviour
/// changes without a version bump.
// r2: fio/ffsb completion reaping is direction-filtered and slot
// allocation free-listed (the double-reap fix) — shared-SSD colocation
// results changed.
pub const CODE_SALT: &str = concat!("a4-sim/", env!("CARGO_PKG_VERSION"), "/r2");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

// a4-lint: allow-fn(counter-safety) -- FNV-1a is a hash: modular wrap-around is the mixing step, not a counter
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content key of an arbitrary serialized payload: 128 bits (two
/// independently seeded FNV-1a streams) over the code salt and the
/// payload, rendered as 32 hex digits. [`spec_key`] and the job queue's
/// task ids both use this, so every on-disk artifact keys on the same
/// *(code version, content)* pair — and the store envelope reuses it as
/// the payload checksum.
pub(crate) fn content_key(payload: &str) -> String {
    let lo = fnv1a(fnv1a(FNV_OFFSET, CODE_SALT.as_bytes()), payload.as_bytes());
    // Second stream: different seed, salt appended, so the two halves
    // are not trivially correlated.
    let hi = fnv1a(
        fnv1a(FNV_OFFSET ^ 0x5bd1_e995_9d3a_c1f7, payload.as_bytes()),
        CODE_SALT.as_bytes(),
    );
    format!("{hi:016x}{lo:016x}")
}

/// Content hash of one experiment cell: [`content_key`] over the spec's
/// JSON form.
///
/// # Panics
///
/// Panics if the spec fails to serialize (specs are plain data; this
/// cannot happen for constructible specs).
pub fn spec_key(spec: &ScenarioSpec) -> String {
    // a4-lint: allow(panic-unwrap) -- specs are plain data (no maps, no non-string keys), so serialization is infallible for constructible specs; the infallible key signature is load-bearing across the store, queue and service
    content_key(&serde_json::to_string(spec).expect("specs serialize"))
}

/// The on-disk entry form: the report wrapped with its own checksum, so
/// corrupt-but-parseable entries are detectable. Serialization is
/// byte-stable within one build, so re-serializing the parsed report
/// and re-hashing reproduces `payload_fnv` exactly for intact entries.
#[derive(Debug, Deserialize)]
struct StoredEntry {
    /// [`content_key`] of the serialized `report` field.
    payload_fnv: String,
    /// The cached report itself.
    report: RunReport,
}

/// An on-disk store of [`RunReport`]s keyed by [`spec_key`].
///
/// # Examples
///
/// ```
/// use a4_experiments::cache::{spec_key, ResultCache};
/// use a4_experiments::{RunOpts, ScenarioSpec};
///
/// let dir = std::env::temp_dir().join("a4-cache-doc-test");
/// let cache = ResultCache::new(&dir);
/// let spec = ScenarioSpec::microbench(RunOpts::quick());
/// let key = spec_key(&spec);
/// assert!(cache.load(&key).is_none(), "cold cache");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    fs: Arc<dyn Fs>,
    // Shared across clones (sweep threads clone the runner's cache), so
    // a whole sweep reports one hit/simulated tally — and one
    // degradation tally.
    hits: Arc<AtomicU64>,
    simulated: Arc<AtomicU64>,
    write_failures: Arc<AtomicU64>,
    store_retries: Arc<AtomicU64>,
    quarantined: Arc<AtomicU64>,
    warned: Arc<AtomicBool>,
}

/// Distinguishes concurrent `store` calls for the *same* key within one
/// process (duplicate specs across sweep threads), so each writer owns a
/// unique temp file.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache::with_fs(dir, Arc::new(RealFs))
    }

    /// A cache rooted at `dir` whose filesystem access goes through
    /// `fs` — the chaos-test entry point (see [`crate::fault::FaultFs`]).
    pub fn with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn Fs>) -> Self {
        ResultCache {
            dir: dir.into(),
            fs,
            hits: Arc::new(AtomicU64::new(0)),
            simulated: Arc::new(AtomicU64::new(0)),
            write_failures: Arc::new(AtomicU64::new(0)),
            store_retries: Arc::new(AtomicU64::new(0)),
            quarantined: Arc::new(AtomicU64::new(0)),
            warned: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cells served from disk since construction (shared across clones).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells simulated and stored since construction.
    pub fn simulated(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Entries that failed to write after retries — each one degraded
    /// the sweep to never-caching for that cell.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Transient store-write retries that were needed (and succeeded or
    /// exhausted the budget) since construction.
    pub fn store_retries(&self) -> u64 {
        self.store_retries.load(Ordering::Relaxed)
    }

    /// Checksum-mismatched entries moved to `<store>/corrupt/`.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.report.json"))
    }

    /// Where checksum-mismatched entries are quarantined.
    pub fn corrupt_dir(&self) -> PathBuf {
        self.dir.join("corrupt")
    }

    /// Loads the report cached under `key`. Missing, unreadable or
    /// unparseable entries are misses; parseable entries whose payload
    /// checksum mismatches are quarantined to `<store>/corrupt/` (kept
    /// for a post-mortem, never served) and also miss — the cell then
    /// re-executes idempotently.
    ///
    /// A hit refreshes the entry's modification time (best effort), so
    /// [`ResultCache::gc`]'s age cutoff measures time since the entry
    /// was last *used*, not since it was first simulated — entries the
    /// last run touched always survive a GC.
    pub fn load(&self, key: &str) -> Option<RunReport> {
        let path = self.path_of(key);
        let json = self.fs.read_to_string(&path).ok()?;
        let entry: StoredEntry = serde_json::from_str(&json).ok()?;
        let payload = serde_json::to_string(&entry.report).ok()?;
        if content_key(&payload) != entry.payload_fnv {
            self.quarantine(key, &path);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        // The refresh is best-effort (a read-only store still serves
        // hits) but a failure must be *visible*: it means the next GC
        // will age this entry from its last store, and silent mtime
        // loss is exactly how cache corruption hides.
        if let Err(e) = self.fs.touch(&path) {
            eprintln!(
                "[a4-cache] warning: could not refresh mtime of {}: {e}",
                path.display()
            );
        }
        Some(entry.report)
    }

    /// Moves a checksum-mismatched entry to `corrupt/` and counts it.
    fn quarantine(&self, key: &str, path: &Path) {
        let grave = self.corrupt_dir().join(format!("{key}.report.json"));
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        match self
            .fs
            .create_dir_all(&self.corrupt_dir())
            .and_then(|()| self.fs.rename(path, &grave))
        {
            Ok(()) => eprintln!(
                "[a4-cache] warning: entry {key} failed its checksum; quarantined to {}",
                grave.display()
            ),
            Err(e) => eprintln!(
                "[a4-cache] warning: entry {key} failed its checksum and could not be \
                 quarantined ({e}); treating as a miss"
            ),
        }
    }

    /// Garbage-collects the cache's own artifacts: removes every
    /// `*.report.json` entry and `*.tmp` scratch file whose modification
    /// time is older than `max_age` (entries keep their mtime fresh on
    /// every [`ResultCache::load`] hit and [`ResultCache::store`], so
    /// this drops exactly the entries no recent run touched — plus any
    /// stale temp files a crashed writer left behind). Files the cache
    /// did not write are never touched, so a cache directory shared with
    /// other outputs (e.g. `--json` tables) is safe to sweep; the
    /// `corrupt/` quarantine is likewise left alone. Returns
    /// `(removed, kept)` over cache artifacts; a missing directory is
    /// `(0, 0)`.
    pub fn gc(&self, max_age: std::time::Duration) -> (u64, u64) {
        let now = std::time::SystemTime::now();
        let (mut removed, mut kept) = (0, 0);
        let Ok(names) = self.fs.read_dir_names(&self.dir) else {
            return (0, 0);
        };
        for name in names {
            if !(name.ends_with(".report.json") || name.ends_with(".tmp")) {
                continue;
            }
            let path = self.dir.join(&name);
            let Ok(modified) = self.fs.modified(&path) else {
                continue;
            };
            let age = now.duration_since(modified).unwrap_or_default();
            if age > max_age && self.fs.remove_file(&path).is_ok() {
                removed += 1;
            } else {
                kept += 1;
            }
        }
        (removed, kept)
    }

    /// Stores `report` under `key` (best effort: a full disk or missing
    /// permissions degrade to "no cache", never to a failed sweep — but
    /// *counted* degradation, see [`ResultCache::write_failures`]).
    ///
    /// The write goes to a per-writer temp file first and is moved into
    /// place atomically, so concurrent sweep threads and interrupted
    /// runs can never leave a torn entry behind; a failed write cleans
    /// its temp file up. Transient failures retry with
    /// [`Backoff::fabric`] — each filesystem step retries on its own,
    /// so a fault budget that guarantees any *single* operation
    /// eventually succeeds guarantees the whole store does (retrying
    /// the write+rename compound would let alternating faults exhaust
    /// the budget). A store that stays down is warned about once per
    /// process.
    pub fn store(&self, key: &str, report: &RunReport) {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let json = match serde_json::to_string(report) {
            Ok(json) => json,
            Err(_) => return,
        };
        let envelope = format!(
            "{{\"payload_fnv\":\"{}\",\"report\":{json}}}",
            content_key(&json)
        );
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key}.{}.{seq}.tmp", std::process::id()));
        let mut retries = 0;
        let backoff = Backoff::fabric();
        let result = backoff
            .retry(&mut retries, || {
                self.fs
                    .create_dir_all(&self.dir)
                    .and_then(|()| self.fs.write(&tmp, envelope.as_bytes()))
            })
            .and_then(|()| {
                backoff.retry(&mut retries, || self.fs.rename(&tmp, &self.path_of(key)))
            });
        self.store_retries.fetch_add(retries, Ordering::Relaxed);
        if let Err(e) = result {
            self.fs.remove_file(&tmp).ok();
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "[a4-cache] warning: store write failed ({e}); the sweep continues \
                     without caching the affected cells (reported once per process)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunOpts;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a4-cache-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn quick_report() -> RunReport {
        ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        })
        .build()
        .unwrap()
        .run()
        .report
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = ScenarioSpec::microbench(RunOpts::quick());
        let b = ScenarioSpec::microbench(RunOpts::quick()).with_seed(7);
        assert_eq!(spec_key(&a), spec_key(&a), "pure function of the spec");
        assert_ne!(spec_key(&a), spec_key(&b), "seed is part of the key");
        assert_eq!(spec_key(&a).len(), 32);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let spec = ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        });
        let key = spec_key(&spec);
        assert!(cache.load(&key).is_none());
        let report = spec.build().unwrap().run().report;
        cache.store(&key, &report);
        let back = cache.load(&key).expect("stored entry loads");
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.samples.len(), report.samples.len());
        assert_eq!(
            back.samples[0].workloads[0].accesses,
            report.samples[0].workloads[0].accesses
        );
        assert_eq!(cache.write_failures(), 0);
        assert_eq!(cache.quarantined(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_old_entries_and_load_refreshes_age() {
        use std::time::{Duration, SystemTime};
        let dir = tmp_dir("gc");
        let cache = ResultCache::new(&dir);
        // Missing directory: a no-op.
        assert_eq!(cache.gc(Duration::from_secs(0)), (0, 0));

        let report = quick_report();
        cache.store("old", &report);
        cache.store("fresh", &report);
        // Fabricate an ancient timestamp on one entry (and a stale temp
        // file, as an interrupted writer would leave).
        let backdate = |p: &std::path::Path| {
            let f = std::fs::File::options().append(true).open(p).unwrap();
            f.set_modified(SystemTime::now() - Duration::from_secs(90 * 86_400))
                .unwrap();
        };
        backdate(&cache.path_of("old"));
        let tmp = dir.join(".stale.tmp");
        std::fs::write(&tmp, "x").unwrap();
        backdate(&tmp);
        // A foreign file in a shared directory must never be swept, no
        // matter how old.
        let foreign = dir.join("fig12.json");
        std::fs::write(&foreign, "{}").unwrap();
        backdate(&foreign);

        let (removed, kept) = cache.gc(Duration::from_secs(30 * 86_400));
        assert_eq!((removed, kept), (2, 1), "old entry + stale tmp dropped");
        assert!(cache.load("old").is_none());
        assert!(cache.load("fresh").is_some());
        assert!(foreign.exists(), "non-cache files are left alone");

        // A load refreshes the mtime: backdate, touch via load, GC keeps.
        backdate(&cache.path_of("fresh"));
        assert!(cache.load("fresh").is_some());
        let (removed, kept) = cache.gc(Duration::from_secs(30 * 86_400));
        assert_eq!((removed, kept), (0, 1), "loaded entry counts as touched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(cache.path_of("deadbeef"), "{not json").unwrap();
        assert!(cache.load("deadbeef").is_none());
        // Unparseable garbage is a miss, not corruption: nothing to
        // quarantine, the cell just re-executes.
        assert_eq!(cache.quarantined(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_mismatches_quarantine_instead_of_serving() {
        let dir = tmp_dir("checksum");
        let cache = ResultCache::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A parseable envelope whose checksum does not cover its
        // payload: the bit-flip-that-still-parses case.
        let payload = serde_json::to_string(&quick_report()).unwrap();
        let forged = format!(
            "{{\"payload_fnv\":\"{}\",\"report\":{payload}}}",
            "0".repeat(32)
        );
        std::fs::write(cache.path_of("feedface"), forged).unwrap();

        assert!(cache.load("feedface").is_none(), "never served as truth");
        assert_eq!(cache.quarantined(), 1);
        assert!(
            cache.corrupt_dir().join("feedface.report.json").exists(),
            "evidence preserved under corrupt/"
        );
        assert!(
            !cache.path_of("feedface").exists(),
            "slot is free for re-execution"
        );

        // Re-executing the cell is idempotent: a fresh store and load
        // round-trips normally.
        cache.store("feedface", &quick_report());
        assert!(cache.load("feedface").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unenveloped_entries_are_misses() {
        let dir = tmp_dir("legacy");
        let cache = ResultCache::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-envelope entry (bare report JSON): parseable as JSON
        // but not as an envelope — a miss, regenerated on next store.
        let payload = serde_json::to_string(&quick_report()).unwrap();
        std::fs::write(cache.path_of("cafe"), payload).unwrap();
        assert!(cache.load("cafe").is_none());
        assert_eq!(cache.quarantined(), 0, "legacy entries miss, not corrupt");
        std::fs::remove_dir_all(&dir).ok();
    }
}
