//! Content-addressed on-disk caching of sweep results.
//!
//! Every experiment cell is fully described by its serialized
//! [`ScenarioSpec`] (which embeds the [`crate::spec::RunOpts`] protocol
//! and seed), so the pair *(code version, spec JSON)* determines the
//! [`RunReport`] bit for bit — the simulator is deterministic. A
//! [`ResultCache`] therefore stores each report under a hash of exactly
//! that pair:
//!
//! * re-running a figure after editing one cell re-simulates only the
//!   changed cell;
//! * an interrupted paper-length sweep resumes where it stopped
//!   (completed cells are on disk);
//! * a warm re-run of an unchanged sweep reads every cell from disk and
//!   rebuilds byte-identical tables in a small fraction of the cold
//!   wall-clock.
//!
//! The key embeds [`CODE_SALT`]; bump its revision suffix whenever a
//! change alters simulation *behaviour* (counters, victim picks, event
//! order). Pure-speed refactors that keep reports byte-identical may
//! keep the salt. Stored files are written via a temp-file rename so an
//! interrupted writer never leaves a torn entry; unreadable or corrupt
//! entries are treated as misses and rewritten.

use crate::spec::ScenarioSpec;
use a4_core::RunReport;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version salt mixed into every cache key: crate version plus a manual
/// behaviour revision. Bump the `rN` suffix when simulation behaviour
/// changes without a version bump.
// r2: fio/ffsb completion reaping is direction-filtered and slot
// allocation free-listed (the double-reap fix) — shared-SSD colocation
// results changed.
pub const CODE_SALT: &str = concat!("a4-sim/", env!("CARGO_PKG_VERSION"), "/r2");

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

// a4-lint: allow-fn(counter-safety) -- FNV-1a is a hash: modular wrap-around is the mixing step, not a counter
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content key of an arbitrary serialized payload: 128 bits (two
/// independently seeded FNV-1a streams) over the code salt and the
/// payload, rendered as 32 hex digits. [`spec_key`] and the job queue's
/// task ids both use this, so every on-disk artifact keys on the same
/// *(code version, content)* pair.
pub(crate) fn content_key(payload: &str) -> String {
    let lo = fnv1a(fnv1a(FNV_OFFSET, CODE_SALT.as_bytes()), payload.as_bytes());
    // Second stream: different seed, salt appended, so the two halves
    // are not trivially correlated.
    let hi = fnv1a(
        fnv1a(FNV_OFFSET ^ 0x5bd1_e995_9d3a_c1f7, payload.as_bytes()),
        CODE_SALT.as_bytes(),
    );
    format!("{hi:016x}{lo:016x}")
}

/// Content hash of one experiment cell: [`content_key`] over the spec's
/// JSON form.
///
/// # Panics
///
/// Panics if the spec fails to serialize (specs are plain data; this
/// cannot happen for constructible specs).
pub fn spec_key(spec: &ScenarioSpec) -> String {
    // a4-lint: allow(panic-unwrap) -- specs are plain data (no maps, no non-string keys), so serialization is infallible for constructible specs; the infallible key signature is load-bearing across the store, queue and service
    content_key(&serde_json::to_string(spec).expect("specs serialize"))
}

/// An on-disk store of [`RunReport`]s keyed by [`spec_key`].
///
/// # Examples
///
/// ```
/// use a4_experiments::cache::{spec_key, ResultCache};
/// use a4_experiments::{RunOpts, ScenarioSpec};
///
/// let dir = std::env::temp_dir().join("a4-cache-doc-test");
/// let cache = ResultCache::new(&dir);
/// let spec = ScenarioSpec::microbench(RunOpts::quick());
/// let key = spec_key(&spec);
/// assert!(cache.load(&key).is_none(), "cold cache");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    // Shared across clones (sweep threads clone the runner's cache), so
    // a whole sweep reports one hit/simulated tally.
    hits: Arc<AtomicU64>,
    simulated: Arc<AtomicU64>,
}

/// Distinguishes concurrent `store` calls for the *same* key within one
/// process (duplicate specs across sweep threads), so each writer owns a
/// unique temp file.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            hits: Arc::new(AtomicU64::new(0)),
            simulated: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cells served from disk since construction (shared across clones).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells simulated and stored since construction.
    pub fn simulated(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.report.json"))
    }

    /// Loads the report cached under `key`, treating missing, unreadable
    /// or corrupt entries as misses.
    ///
    /// A hit refreshes the entry's modification time (best effort), so
    /// [`ResultCache::gc`]'s age cutoff measures time since the entry
    /// was last *used*, not since it was first simulated — entries the
    /// last run touched always survive a GC.
    pub fn load(&self, key: &str) -> Option<RunReport> {
        let path = self.path_of(key);
        let json = std::fs::read_to_string(&path).ok()?;
        let report: Option<RunReport> = serde_json::from_str(&json).ok();
        if report.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // The refresh is best-effort (a read-only store still
            // serves hits) but a failure must be *visible*: it means
            // the next GC will age this entry from its last store, and
            // silent mtime loss is exactly how cache corruption hides.
            if let Err(e) = std::fs::File::options()
                .append(true)
                .open(&path)
                .and_then(|f| f.set_modified(std::time::SystemTime::now()))
            {
                eprintln!(
                    "[a4-cache] warning: could not refresh mtime of {}: {e}",
                    path.display()
                );
            }
        }
        report
    }

    /// Garbage-collects the cache's own artifacts: removes every
    /// `*.report.json` entry and `*.tmp` scratch file whose modification
    /// time is older than `max_age` (entries keep their mtime fresh on
    /// every [`ResultCache::load`] hit and [`ResultCache::store`], so
    /// this drops exactly the entries no recent run touched — plus any
    /// stale temp files a crashed writer left behind). Files the cache
    /// did not write are never touched, so a cache directory shared with
    /// other outputs (e.g. `--json` tables) is safe to sweep. Returns
    /// `(removed, kept)` over cache artifacts; a missing directory is
    /// `(0, 0)`.
    pub fn gc(&self, max_age: std::time::Duration) -> (u64, u64) {
        let now = std::time::SystemTime::now();
        let (mut removed, mut kept) = (0, 0);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !(name.ends_with(".report.json") || name.ends_with(".tmp")) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .unwrap_or_default();
            if age > max_age && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            } else {
                kept += 1;
            }
        }
        (removed, kept)
    }

    /// Stores `report` under `key` (best effort: a full disk or missing
    /// permissions degrade to "no cache", never to a failed sweep).
    ///
    /// The write goes to a per-writer temp file first and is moved into
    /// place atomically, so concurrent sweep threads and interrupted
    /// runs can never leave a torn entry behind; a failed write cleans
    /// its temp file up.
    pub fn store(&self, key: &str, report: &RunReport) {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let json = match serde_json::to_string(report) {
            Ok(json) => json,
            Err(_) => return,
        };
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key}.{}.{seq}.tmp", std::process::id()));
        if std::fs::write(&tmp, json).is_err() || std::fs::rename(&tmp, self.path_of(key)).is_err()
        {
            std::fs::remove_file(&tmp).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunOpts;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a4-cache-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = ScenarioSpec::microbench(RunOpts::quick());
        let b = ScenarioSpec::microbench(RunOpts::quick()).with_seed(7);
        assert_eq!(spec_key(&a), spec_key(&a), "pure function of the spec");
        assert_ne!(spec_key(&a), spec_key(&b), "seed is part of the key");
        assert_eq!(spec_key(&a).len(), 32);
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let spec = ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        });
        let key = spec_key(&spec);
        assert!(cache.load(&key).is_none());
        let report = spec.build().unwrap().run().report;
        cache.store(&key, &report);
        let back = cache.load(&key).expect("stored entry loads");
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.samples.len(), report.samples.len());
        assert_eq!(
            back.samples[0].workloads[0].accesses,
            report.samples[0].workloads[0].accesses
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_drops_old_entries_and_load_refreshes_age() {
        use std::time::{Duration, SystemTime};
        let dir = tmp_dir("gc");
        let cache = ResultCache::new(&dir);
        // Missing directory: a no-op.
        assert_eq!(cache.gc(Duration::from_secs(0)), (0, 0));

        let report = ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        })
        .build()
        .unwrap()
        .run()
        .report;
        cache.store("old", &report);
        cache.store("fresh", &report);
        // Fabricate an ancient timestamp on one entry (and a stale temp
        // file, as an interrupted writer would leave).
        let backdate = |p: &std::path::Path| {
            let f = std::fs::File::options().append(true).open(p).unwrap();
            f.set_modified(SystemTime::now() - Duration::from_secs(90 * 86_400))
                .unwrap();
        };
        backdate(&cache.path_of("old"));
        let tmp = dir.join(".stale.tmp");
        std::fs::write(&tmp, "x").unwrap();
        backdate(&tmp);
        // A foreign file in a shared directory must never be swept, no
        // matter how old.
        let foreign = dir.join("fig12.json");
        std::fs::write(&foreign, "{}").unwrap();
        backdate(&foreign);

        let (removed, kept) = cache.gc(Duration::from_secs(30 * 86_400));
        assert_eq!((removed, kept), (2, 1), "old entry + stale tmp dropped");
        assert!(cache.load("old").is_none());
        assert!(cache.load("fresh").is_some());
        assert!(foreign.exists(), "non-cache files are left alone");

        // A load refreshes the mtime: backdate, touch via load, GC keeps.
        backdate(&cache.path_of("fresh"));
        assert!(cache.load("fresh").is_some());
        let (removed, kept) = cache.gc(Duration::from_secs(30 * 86_400));
        assert_eq!((removed, kept), (0, 1), "loaded entry counts as touched");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(cache.path_of("deadbeef"), "{not json").unwrap();
        assert!(cache.load("deadbeef").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
