//! Result tables: the machine- and human-readable output of every
//! experiment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One labelled row of numeric values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (a sweep point or workload name).
    pub label: String,
    /// Values aligned with [`Table::columns`].
    pub values: Vec<f64>,
}

/// A figure's data as a table.
///
/// # Examples
///
/// ```
/// use a4_experiments::Table;
///
/// let mut t = Table::new("fig0", "demo", ["a", "b"]);
/// t.push("row1", [1.0, 2.0]);
/// assert_eq!(t.get("row1", "b"), Some(2.0));
/// assert!(t.to_string().contains("row1"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Figure id ("fig3a", "fig13b", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: impl IntoIterator<Item = f64>) {
        let values: Vec<f64> = values.into_iter().collect();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Looks a cell up by row label and column name.
    pub fn get(&self, label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.values[col])
    }

    /// All values of one column, in row order.
    pub fn column(&self, column: &str) -> Vec<f64> {
        match self.columns.iter().position(|c| c == column) {
            Some(col) => self.rows.iter().map(|r| r.values[col]).collect(),
            None => Vec::new(),
        }
    }

    /// Row labels in order.
    pub fn labels(&self) -> Vec<&str> {
        self.rows.iter().map(|r| r.label.as_str()).collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:label_w$}", r.label)?;
            for v in &r.values {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    write!(f, "  {v:>14.3e}")?;
                } else {
                    write!(f, "  {v:>14.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut t = Table::new("f", "t", ["x", "y"]);
        t.push("a", [1.0, 2.0]);
        t.push("b", [3.0, 4.0]);
        assert_eq!(t.get("a", "x"), Some(1.0));
        assert_eq!(t.get("b", "y"), Some(4.0));
        assert_eq!(t.get("c", "x"), None);
        assert_eq!(t.get("a", "z"), None);
        assert_eq!(t.column("y"), vec![2.0, 4.0]);
        assert_eq!(t.labels(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("f", "t", ["x"]);
        t.push("a", [1.0, 2.0]);
    }

    #[test]
    fn display_and_serde_roundtrip() {
        let mut t = Table::new("fig3a", "sweep", ["miss", "bw"]);
        t.push("[0:1]", [0.55, 12345.0]);
        let text = t.to_string();
        assert!(text.contains("fig3a"));
        assert!(text.contains("[0:1]"));
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
