//! Result tables: the machine- and human-readable output of every
//! experiment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One labelled row of numeric values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (a sweep point or workload name).
    pub label: String,
    /// Values aligned with [`Table::columns`].
    pub values: Vec<f64>,
}

/// A figure's data as a table.
///
/// # Examples
///
/// ```
/// use a4_experiments::Table;
///
/// let mut t = Table::new("fig0", "demo", ["a", "b"]);
/// t.push("row1", [1.0, 2.0]);
/// assert_eq!(t.get("row1", "b"), Some(2.0));
/// assert!(t.to_string().contains("row1"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Figure id ("fig3a", "fig13b", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: impl IntoIterator<Item = f64>) {
        let values: Vec<f64> = values.into_iter().collect();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Looks a cell up by row label and column name.
    pub fn get(&self, label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.values[col])
    }

    /// All values of one column, in row order.
    pub fn column(&self, column: &str) -> Vec<f64> {
        match self.columns.iter().position(|c| c == column) {
            Some(col) => self.rows.iter().map(|r| r.values[col]).collect(),
            None => Vec::new(),
        }
    }

    /// Row labels in order.
    pub fn labels(&self) -> Vec<&str> {
        self.rows.iter().map(|r| r.label.as_str()).collect()
    }
}

/// Mean ± sample-stddev aggregation of N same-shaped replica tables
/// (the `a4-repro --replicas N` output form).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Per-cell means, shaped like the replica tables. Shares their `id`
    /// (so `--json` writes `<id>.mean.json`).
    pub mean: Table,
    /// Per-cell sample standard deviations (zero for a single replica).
    pub stddev: Table,
    /// Number of replicas aggregated.
    pub replicas: usize,
}

impl TableStats {
    /// Aggregates replica tables cell-wise into mean and sample
    /// standard deviation (`n - 1` denominator; zero when `n == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or the tables disagree in id,
    /// columns, or row labels — replicas of one cell grid always agree.
    pub fn from_replicas(tables: &[Table]) -> TableStats {
        let first = tables.first().expect("at least one replica table");
        for t in tables {
            assert_eq!(t.id, first.id, "replica tables must share an id");
            assert_eq!(t.columns, first.columns, "replica columns must match");
            assert_eq!(t.labels(), first.labels(), "replica rows must match");
        }
        let n = tables.len();
        let mut mean = Table::new(
            first.id.clone(),
            format!("{} (mean of {n} replicas)", first.title),
            first.columns.clone(),
        );
        let mut stddev = Table::new(
            first.id.clone(),
            format!("{} (sample stddev over {n} replicas)", first.title),
            first.columns.clone(),
        );
        for (ri, row) in first.rows.iter().enumerate() {
            let mut means = Vec::with_capacity(row.values.len());
            let mut sds = Vec::with_capacity(row.values.len());
            for ci in 0..row.values.len() {
                let m = tables.iter().map(|t| t.rows[ri].values[ci]).sum::<f64>() / n as f64;
                let var = if n > 1 {
                    tables
                        .iter()
                        .map(|t| (t.rows[ri].values[ci] - m).powi(2))
                        .sum::<f64>()
                        / (n - 1) as f64
                } else {
                    0.0
                };
                means.push(m);
                sds.push(var.sqrt());
            }
            mean.push(row.label.clone(), means);
            stddev.push(row.label.clone(), sds);
        }
        TableStats {
            mean,
            stddev,
            replicas: n,
        }
    }
}

impl fmt::Display for TableStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== {} — {} (mean ± stddev, {} replicas) ==",
            self.mean.id, self.mean.title, self.replicas
        )?;
        let label_w = self
            .mean
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        write!(f, "{:label_w$}", "")?;
        for c in &self.mean.columns {
            write!(f, "  {c:>24}")?;
        }
        writeln!(f)?;
        for (m, s) in self.mean.rows.iter().zip(&self.stddev.rows) {
            write!(f, "{:label_w$}", m.label)?;
            for (v, sd) in m.values.iter().zip(&s.values) {
                let cell = if v.is_nan() {
                    // A best-effort merge's unexecuted cell, not a
                    // number that happens to be unrepresentable.
                    "(missing)".to_string()
                } else if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    format!("{v:.3e} ±{sd:.2e}")
                } else {
                    format!("{v:.4} ±{sd:.4}")
                };
                write!(f, "  {cell:>24}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:label_w$}", r.label)?;
            for v in &r.values {
                if v.is_nan() {
                    // A best-effort merge's unexecuted cell.
                    write!(f, "  {:>14}", "(missing)")?;
                } else if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    write!(f, "  {v:>14.3e}")?;
                } else {
                    write!(f, "  {v:>14.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut t = Table::new("f", "t", ["x", "y"]);
        t.push("a", [1.0, 2.0]);
        t.push("b", [3.0, 4.0]);
        assert_eq!(t.get("a", "x"), Some(1.0));
        assert_eq!(t.get("b", "y"), Some(4.0));
        assert_eq!(t.get("c", "x"), None);
        assert_eq!(t.get("a", "z"), None);
        assert_eq!(t.column("y"), vec![2.0, 4.0]);
        assert_eq!(t.labels(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("f", "t", ["x"]);
        t.push("a", [1.0, 2.0]);
    }

    #[test]
    fn replica_stats_aggregate_cellwise() {
        let mk = |a: f64, b: f64| {
            let mut t = Table::new("fig", "t", ["x"]);
            t.push("r1", [a]);
            t.push("r2", [b]);
            t
        };
        let stats = TableStats::from_replicas(&[mk(1.0, 10.0), mk(3.0, 10.0)]);
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.mean.get("r1", "x"), Some(2.0));
        assert_eq!(stats.mean.get("r2", "x"), Some(10.0));
        // Sample stddev of {1, 3} = sqrt(2).
        assert!((stats.stddev.get("r1", "x").unwrap() - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(stats.stddev.get("r2", "x"), Some(0.0));
        let text = stats.to_string();
        assert!(text.contains("±"), "display shows mean ± stddev: {text}");

        // A single replica has zero spread.
        let one = TableStats::from_replicas(&[mk(5.0, 6.0)]);
        assert_eq!(one.stddev.get("r1", "x"), Some(0.0));
        assert_eq!(one.mean.get("r2", "x"), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "replica rows must match")]
    fn replica_shape_mismatch_panics() {
        let mut a = Table::new("fig", "t", ["x"]);
        a.push("r1", [1.0]);
        let mut b = Table::new("fig", "t", ["x"]);
        b.push("other", [1.0]);
        TableStats::from_replicas(&[a, b]);
    }

    #[test]
    fn display_and_serde_roundtrip() {
        let mut t = Table::new("fig3a", "sweep", ["miss", "bw"]);
        t.push("[0:1]", [0.55, 12345.0]);
        let text = t.to_string();
        assert!(text.contains("fig3a"));
        assert!(text.contains("[0:1]"));
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
