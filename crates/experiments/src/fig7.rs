//! Fig. 7: LLC allocation strategy — explicitly allocating I/O workloads
//! to ways that *overlap* the inclusive ways ((n+2)-Overlap) beats
//! *excluding* them (n-Exclude) even though both use the same effective
//! capacity (observation O3).
//!
//! Setup (§4.1): DPDK-T with masks
//!
//! * `n-Exclude` — `n` ways ending at way 8 (`[9-n:8]`),
//! * `n-Overlap` — `n` ways ending at way 10 (`[11-n:10]`).

use crate::runner::{SweepRunner, TypedAxis};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::{Priority, WayMask};
use a4_sim::LatencyKind;

/// Allocation strategy of Fig. 7a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `n` ways excluding the inclusive ways.
    Exclude(usize),
    /// `n` ways overlapping (ending at) the inclusive ways.
    Overlap(usize),
}

impl Strategy {
    /// The CAT mask for the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit the 11 ways.
    pub fn mask(self) -> WayMask {
        match self {
            Strategy::Exclude(n) => {
                WayMask::from_paper_range(9 - n, 8).expect("n fits standard ways")
            }
            Strategy::Overlap(n) => {
                WayMask::from_paper_range(11 - n, 10).expect("n fits the cache")
            }
        }
    }

    /// Display label ("2E", "4O", ...).
    pub fn label(self) -> String {
        match self {
            Strategy::Exclude(n) => format!("{n}E"),
            Strategy::Overlap(n) => format!("{n}O"),
        }
    }
}

/// The paper's evaluated strategies, in figure order.
pub fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Overlap(2),
        Strategy::Exclude(2),
        Strategy::Overlap(4),
        Strategy::Exclude(4),
        Strategy::Overlap(6),
        Strategy::Exclude(6),
        Strategy::Overlap(8),
    ]
}

/// One cell: DPDK-T under `strategy`'s mask with background X-Mem
/// pressure on the standard ways (the paper keeps the §3 co-runners
/// present so conflict misses matter).
pub fn spec(opts: &RunOpts, strategy: Strategy) -> ScenarioSpec {
    ScenarioSpec::new(format!("fig7 {}", strategy.label()), *opts)
        .with_nic(4, 1024)
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: true,
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::Low,
        )
        .with_cat(1, strategy.mask(), &["dpdk"])
        .with_cat(
            2,
            WayMask::from_paper_range(7, 8).expect("static"),
            &["xmem"],
        )
}

/// The strategy axis, in figure order.
pub fn axis() -> TypedAxis<Strategy> {
    TypedAxis::new("strategy", strategies().into_iter().map(|s| (s, s.label())))
}

/// All cells, in figure order.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    axis().values.into_iter().map(|s| spec(opts, s)).collect()
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let mut table = Table::new(
        "fig7b",
        "overlapping vs excluding the inclusive ways (DPDK-T)",
        ["al_us", "tl_us", "mem_rd_gbps", "mem_wr_gbps"],
    );
    for (label, run) in axis().labels.iter().zip(runs) {
        let (al, tl, rd, wr) = point_metrics(run);
        table.push(label.clone(), [al, tl, rd, wr]);
    }
    table
}

fn point_metrics(run: &ScenarioRun) -> (f64, f64, f64, f64) {
    (
        run.mean_latency_us("dpdk", LatencyKind::NetTotal),
        run.p99_latency_us("dpdk", LatencyKind::NetTotal),
        run.mem_read_gbps(),
        run.mem_write_gbps(),
    )
}

/// One strategy run: returns `(al_us, tl_us, mem_rd_gbps, mem_wr_gbps)`.
pub fn run_point(opts: &RunOpts, strategy: Strategy) -> (f64, f64, f64, f64) {
    let run = spec(opts, strategy)
        .build()
        .expect("static fig7 layout")
        .run();
    point_metrics(&run)
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig7 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_fig_7a() {
        assert_eq!(
            Strategy::Exclude(2).mask(),
            WayMask::from_paper_range(7, 8).unwrap()
        );
        assert_eq!(
            Strategy::Overlap(4).mask(),
            WayMask::from_paper_range(7, 10).unwrap()
        );
        assert_eq!(Strategy::Overlap(2).mask(), WayMask::INCLUSIVE);
        assert_eq!(Strategy::Exclude(2).label(), "2E");
        assert_eq!(Strategy::Overlap(8).label(), "8O");
    }

    #[test]
    fn exclude_secretly_uses_the_inclusive_ways() {
        // The robust half of observation O3: n-Exclude cannot actually
        // avoid the inclusive ways — its migrated lines land there — so
        // (n+2)-Overlap and n-Exclude behave like equal-capacity
        // allocations. (The paper's second-order result that overlap is
        // strictly *better* rests on write-update freshness effects our
        // model reproduces only weakly; see EXPERIMENTS.md.)
        let opts = RunOpts::paper();
        let (al_overlap, _, rd_overlap, _) = run_point(&opts, Strategy::Overlap(4));
        let (al_exclude, _, rd_exclude, _) = run_point(&opts, Strategy::Exclude(2));
        let lat_ratio = al_overlap / al_exclude.max(1e-9);
        assert!(
            (0.5..=1.5).contains(&lat_ratio),
            "equal effective capacity: overlap {al_overlap:.1}us vs exclude {al_exclude:.1}us"
        );
        let rd_ratio = rd_overlap / rd_exclude.max(1e-9);
        assert!(
            (0.5..=1.5).contains(&rd_ratio),
            "equal memory pressure: {rd_overlap:.2} vs {rd_exclude:.2} GB/s"
        );
        // More effective ways monotonically help.
        let (al_wide, ..) = run_point(&opts, Strategy::Overlap(6));
        assert!(
            al_wide < al_overlap,
            "6O {al_wide:.1}us beats 4O {al_overlap:.1}us"
        );
    }
}
