//! Fig. 14: I/O latency breakdowns and system-wide metrics for
//! Fastclick + FFSB-H under all six schemes.
//!
//! * 14a — Fastclick latency split into NIC-to-host (queueing), packet
//!   pointer access and packet processing;
//! * 14b — FFSB-H latency split into read / regex / write;
//! * 14c — system-wide I/O throughput (Fastclick Rx/Tx, FFSB-H R/W);
//! * 14d — system-wide memory read/write bandwidth.

use crate::scenario::{self, RunOpts, Scheme};
use crate::table::Table;
use a4_core::{Harness, RunReport};
use a4_model::{DeviceId, Priority, WorkloadId};
use a4_sim::LatencyKind;

/// Handles of one Fig. 14 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Ids {
    /// Fastclick.
    pub fastclick: WorkloadId,
    /// FFSB-H.
    pub ffsb: WorkloadId,
    /// The NIC.
    pub nic: DeviceId,
    /// The SSD array.
    pub ssd: DeviceId,
}

/// Runs Fastclick (HPW, 4 cores) + FFSB-H (HPW, 3 cores) under `scheme`.
pub fn run_mix(opts: &RunOpts, scheme: Scheme) -> (RunReport, Fig14Ids) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let fastclick =
        scenario::add_fastclick(&mut sys, nic, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let ffsb =
        scenario::add_ffsb_heavy(&mut sys, ssd, &[4, 5, 6], Priority::High).expect("cores free");
    let mut harness = Harness::new(sys);
    harness.attach_policy(scheme.policy());
    let report = harness.run(opts.warmup, opts.measure);
    (
        report,
        Fig14Ids {
            fastclick,
            ffsb,
            nic,
            ssd,
        },
    )
}

/// Runs all four panels; returns `[fig14a, fig14b, fig14c, fig14d]`.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut a = Table::new(
        "fig14a",
        "Fastclick average latency breakdown (us)",
        ["nic_to_host_us", "pointer_us", "process_us"],
    );
    let mut b = Table::new(
        "fig14b",
        "FFSB-H average latency breakdown (us)",
        ["read_us", "regex_us", "write_us"],
    );
    let mut c = Table::new(
        "fig14c",
        "system-wide I/O throughput (GB/s)",
        ["fc_rx", "fc_tx", "ffsb_rd", "ffsb_wr"],
    );
    let mut d = Table::new(
        "fig14d",
        "system-wide memory bandwidth (GB/s)",
        ["mem_rd", "mem_wr"],
    );
    for scheme in Scheme::all_six() {
        let (report, ids) = run_mix(opts, scheme);
        let us = |kind| report.mean_latency_ns(ids.fastclick, kind) / 1000.0;
        a.push(
            scheme.label(),
            [
                us(LatencyKind::NetQueue),
                us(LatencyKind::NetPointer),
                us(LatencyKind::NetProcess),
            ],
        );
        let sus = |kind| report.mean_latency_ns(ids.ffsb, kind) / 1000.0;
        b.push(
            scheme.label(),
            [
                sus(LatencyKind::StorageRead),
                sus(LatencyKind::StorageRegex),
                sus(LatencyKind::StorageWrite),
            ],
        );
        let secs = report.samples.len() as f64 * 1e-3;
        let gbps = |bytes: u64| bytes as f64 / secs / 1e9;
        let fc_rx = gbps(report.total_io_bytes(ids.fastclick));
        let dev_rd: u64 = report
            .samples
            .iter()
            .filter_map(|s| s.device(ids.nic))
            .map(|d| d.dma_read_bytes)
            .sum();
        let ffsb_rd = gbps(report.total_io_bytes(ids.ffsb));
        let ssd_rd: u64 = report
            .samples
            .iter()
            .filter_map(|s| s.device(ids.ssd))
            .map(|d| d.dma_read_bytes)
            .sum();
        c.push(scheme.label(), [fc_rx, gbps(dev_rd), ffsb_rd, gbps(ssd_rd)]);
        d.push(
            scheme.label(),
            [report.mem_read_gbps(), report.mem_write_gbps()],
        );
    }
    vec![a, b, c, d]
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn a4d_reduces_fastclick_latency_components() {
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let (df, ids_df) = run_mix(&opts, Scheme::Default);
        let (a4, ids_a4) = run_mix(&opts, Scheme::A4(FeatureLevel::D));
        let total = |r: &RunReport, id| r.mean_latency_ns(id, LatencyKind::NetTotal);
        assert!(
            total(&a4, ids_a4.fastclick) < total(&df, ids_df.fastclick),
            "A4-d lowers Fastclick latency"
        );
    }

    #[test]
    fn ffsb_throughput_survives_a4() {
        // The paper: FFSB-H latency/throughput largely unchanged — it is
        // insensitive to DCA and LLC capacity.
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let (df, ids_df) = run_mix(&opts, Scheme::Default);
        let (a4, ids_a4) = run_mix(&opts, Scheme::A4(FeatureLevel::D));
        let tp_df = df.total_io_bytes(ids_df.ffsb) as f64;
        let tp_a4 = a4.total_io_bytes(ids_a4.ffsb) as f64;
        assert!(
            tp_a4 > tp_df * 0.7,
            "FFSB-H not notably compromised: default={tp_df:.0} a4={tp_a4:.0}"
        );
    }
}
