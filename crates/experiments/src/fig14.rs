//! Fig. 14: I/O latency breakdowns and system-wide metrics for
//! Fastclick + FFSB-H under all six schemes.
//!
//! * 14a — Fastclick latency split into NIC-to-host (queueing), packet
//!   pointer access and packet processing;
//! * 14b — FFSB-H latency split into read / regex / write;
//! * 14c — system-wide I/O throughput (Fastclick Rx/Tx, FFSB-H R/W);
//! * 14d — system-wide memory read/write bandwidth.

use crate::runner::SweepRunner;
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;
use a4_sim::LatencyKind;

/// The Fastclick (HPW, 4 cores) + FFSB-H (HPW, 3 cores) mix as one cell.
pub fn mix_spec(opts: &RunOpts, scheme: Scheme) -> ScenarioSpec {
    ScenarioSpec::new(format!("fig14 {}", scheme.label()), *opts)
        .with_nic(4, 1024)
        .with_ssd()
        .with_workload(
            "fastclick",
            WorkloadSpec::Fastclick {
                device: "nic".into(),
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "ffsb",
            WorkloadSpec::FfsbHeavy {
                device: "ssd".into(),
            },
            &[4, 5, 6],
            Priority::High,
        )
        .with_scheme(scheme)
}

/// Runs Fastclick + FFSB-H under `scheme`.
pub fn run_mix(opts: &RunOpts, scheme: Scheme) -> ScenarioRun {
    mix_spec(opts, scheme)
        .build()
        .expect("static fig14 layout")
        .run()
}

/// All six scheme cells.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    Scheme::all_six()
        .into_iter()
        .map(|s| mix_spec(opts, s))
        .collect()
}

/// Runs all four panels serially; returns `[fig14a, fig14b, fig14c,
/// fig14d]`.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    run_with(opts, &SweepRunner::serial())
}

/// Runs all four panels, fanning the scheme cells out over `runner`.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Vec<Table> {
    let runs = runner.run_specs(&specs(opts)).expect("static fig14 layout");
    tables(&runs)
}

/// Renders all four panels from the runs of [`specs`] (same order, one
/// run per scheme of [`Scheme::all_six`]).
pub fn tables(runs: &[ScenarioRun]) -> Vec<Table> {
    let mut a = Table::new(
        "fig14a",
        "Fastclick average latency breakdown (us)",
        ["nic_to_host_us", "pointer_us", "process_us"],
    );
    let mut b = Table::new(
        "fig14b",
        "FFSB-H average latency breakdown (us)",
        ["read_us", "regex_us", "write_us"],
    );
    let mut c = Table::new(
        "fig14c",
        "system-wide I/O throughput (GB/s)",
        ["fc_rx", "fc_tx", "ffsb_rd", "ffsb_wr"],
    );
    let mut d = Table::new(
        "fig14d",
        "system-wide memory bandwidth (GB/s)",
        ["mem_rd", "mem_wr"],
    );
    for (scheme, run) in Scheme::all_six().into_iter().zip(runs) {
        a.push(
            scheme.label(),
            [
                run.mean_latency_us("fastclick", LatencyKind::NetQueue),
                run.mean_latency_us("fastclick", LatencyKind::NetPointer),
                run.mean_latency_us("fastclick", LatencyKind::NetProcess),
            ],
        );
        b.push(
            scheme.label(),
            [
                run.mean_latency_us("ffsb", LatencyKind::StorageRead),
                run.mean_latency_us("ffsb", LatencyKind::StorageRegex),
                run.mean_latency_us("ffsb", LatencyKind::StorageWrite),
            ],
        );
        c.push(
            scheme.label(),
            [
                run.io_gbps("fastclick"),
                run.device_dma_read_gbps("nic"),
                run.io_gbps("ffsb"),
                run.device_dma_read_gbps("ssd"),
            ],
        );
        d.push(scheme.label(), [run.mem_read_gbps(), run.mem_write_gbps()]);
    }
    vec![a, b, c, d]
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn a4d_reduces_fastclick_latency_components() {
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let df = run_mix(&opts, Scheme::Default);
        let a4 = run_mix(&opts, Scheme::A4(FeatureLevel::D));
        assert!(
            a4.mean_latency_us("fastclick", LatencyKind::NetTotal)
                < df.mean_latency_us("fastclick", LatencyKind::NetTotal),
            "A4-d lowers Fastclick latency"
        );
    }

    #[test]
    fn ffsb_throughput_survives_a4() {
        // The paper: FFSB-H latency/throughput largely unchanged — it is
        // insensitive to DCA and LLC capacity.
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let df = run_mix(&opts, Scheme::Default);
        let a4 = run_mix(&opts, Scheme::A4(FeatureLevel::D));
        let tp_df = df.total_io_bytes("ffsb");
        let tp_a4 = a4.total_io_bytes("ffsb");
        assert!(
            tp_a4 > tp_df * 0.7,
            "FFSB-H not notably compromised: default={tp_df:.0} a4={tp_a4:.0}"
        );
    }
}
