//! The sweep engine: cartesian grids of experiment cells executed in
//! parallel with deterministic collection.
//!
//! [`Sweep`] describes a grid of named axes (`Sweep::over(axis,
//! values)`, chained with [`Sweep::and`]); its [`Sweep::cells`] are the
//! cartesian product in row-major order (first axis slowest). A
//! [`SweepRunner`] maps cells — usually [`ScenarioSpec`]s — across a
//! pool of scoped threads and collects results *by cell index*, so the
//! output is byte-identical regardless of thread count: every cell owns
//! its own [`crate::spec::Scenario`] (own RNG seeded from its spec), and
//! no simulation state is shared between threads.

use crate::cache::{spec_key, ResultCache};
use crate::spec::{Scenario, ScenarioRun, ScenarioSpec, SpecError};
use crate::supervise::{CellSupervisor, CkptStore};
use a4_core::PolicyState;
use a4_sim::MonitorSample;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives a per-cell seed from a base seed (SplitMix64 mixing): cells
/// get decorrelated RNG streams while remaining a pure function of
/// `(base, cell)` — re-running a dumped spec reproduces the same run.
// a4-lint: allow-fn(counter-safety) -- SplitMix64 is an RNG mixer: wrap-around multiply/add IS the algorithm, nothing here counts anything
pub fn derive_seed(base: u64, cell: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One named sweep axis with display labels for its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    /// Axis name ("block_kib", "scheme", ...).
    pub name: String,
    /// Value labels, in sweep order.
    pub values: Vec<String>,
}

/// A cartesian grid of named axes.
///
/// # Examples
///
/// ```
/// use a4_experiments::runner::Sweep;
///
/// let sweep = Sweep::over("block", [4, 64, 2048]).and("scheme", ["DF", "A4"]);
/// let cells = sweep.cells();
/// assert_eq!(cells.len(), 6);
/// // Row-major: the first axis varies slowest.
/// assert_eq!(cells[1].labels, vec!["4", "A4"]);
/// assert_eq!(cells[5].coords, vec![2, 1]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sweep {
    /// The axes, first = slowest-varying.
    pub axes: Vec<Axis>,
}

impl Sweep {
    /// Starts a grid with one axis.
    pub fn over<V: ToString>(name: impl Into<String>, values: impl IntoIterator<Item = V>) -> Self {
        Sweep::default().and(name, values)
    }

    /// Adds a (faster-varying) axis.
    pub fn and<V: ToString>(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.axes.push(Axis {
            name: name.into(),
            values: values.into_iter().map(|v| v.to_string()).collect(),
        });
        self
    }

    /// Number of cells (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cells in row-major order (first axis slowest).
    pub fn cells(&self) -> Vec<Cell> {
        let n = self.len();
        let mut cells = Vec::with_capacity(n);
        for index in 0..n {
            let mut coords = vec![0usize; self.axes.len()];
            let mut rem = index;
            for (ai, axis) in self.axes.iter().enumerate().rev() {
                coords[ai] = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let labels = self
                .axes
                .iter()
                .zip(&coords)
                .map(|(a, &c)| a.values[c].clone())
                .collect();
            cells.push(Cell {
                index,
                coords,
                labels,
            });
        }
        cells
    }
}

/// One named sweep axis carrying *typed* values alongside their display
/// labels, so figures can generate their `specs()` directly from the
/// sweep instead of mapping labels back to values by index.
///
/// # Examples
///
/// ```
/// use a4_experiments::runner::TypedAxis;
///
/// let axis = TypedAxis::new("block", [(4u64, "4KB"), (2048, "2MB")]);
/// assert_eq!(axis.len(), 2);
/// assert_eq!(axis.values[1], 2048);
/// assert_eq!(axis.labels[1], "2MB");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedAxis<T> {
    /// Axis name ("block_kib", "scheme", ...).
    pub name: String,
    /// The typed values, in sweep order.
    pub values: Vec<T>,
    /// Display label of each value (same order).
    pub labels: Vec<String>,
}

impl<T> TypedAxis<T> {
    /// An axis from `(value, label)` pairs.
    pub fn new<L: Into<String>>(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (T, L)>,
    ) -> Self {
        let (values, labels) = pairs.into_iter().map(|(v, l)| (v, l.into())).unzip();
        TypedAxis {
            name: name.into(),
            values,
            labels,
        }
    }

    /// An axis whose labels are the values' `ToString` forms — exactly
    /// what the label-only [`Sweep::over`] would have produced.
    pub fn labeled(name: impl Into<String>, values: impl IntoIterator<Item = T>) -> Self
    where
        T: ToString,
    {
        let values: Vec<T> = values.into_iter().collect();
        let labels = values.iter().map(T::to_string).collect();
        TypedAxis {
            name: name.into(),
            values,
            labels,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn label_axis(&self) -> Axis {
        Axis {
            name: self.name.clone(),
            values: self.labels.clone(),
        }
    }
}

/// A two-axis cartesian grid over typed values: the typed counterpart of
/// a two-axis [`Sweep`], guaranteeing cell order (first axis slowest)
/// matches [`Sweep::cells`] exactly while letting `specs()` be generated
/// from the values themselves.
///
/// # Examples
///
/// ```
/// use a4_experiments::runner::{TypedAxis, TypedSweep2};
///
/// let grid = TypedSweep2::new(
///     TypedAxis::labeled("block", [4u64, 64]),
///     TypedAxis::new("scheme", [(true, "on"), (false, "off")]),
/// );
/// let cells: Vec<String> = grid.map(|&b, &s| format!("{b}-{s}"));
/// assert_eq!(cells, ["4-true", "4-false", "64-true", "64-false"]);
/// assert_eq!(grid.sweep().cells()[1].labels, vec!["4", "off"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedSweep2<A, B> {
    /// Slow-varying axis.
    pub a: TypedAxis<A>,
    /// Fast-varying axis.
    pub b: TypedAxis<B>,
}

impl<A, B> TypedSweep2<A, B> {
    /// A grid over `a` (slow) × `b` (fast).
    pub fn new(a: TypedAxis<A>, b: TypedAxis<B>) -> Self {
        TypedSweep2 { a, b }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.a.len() * self.b.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label-grid [`Sweep`] this typed grid projects to; its
    /// [`Sweep::cells`] enumerate in exactly the order [`TypedSweep2::map`]
    /// visits value pairs.
    pub fn sweep(&self) -> Sweep {
        Sweep {
            axes: vec![self.a.label_axis(), self.b.label_axis()],
        }
    }

    /// Maps `f` over all value pairs in row-major cell order (`a`
    /// slowest) — generate a figure's `specs()` with this.
    pub fn map<R>(&self, mut f: impl FnMut(&A, &B) -> R) -> Vec<R> {
        let mut out = Vec::with_capacity(self.len());
        for a in &self.a.values {
            for b in &self.b.values {
                out.push(f(a, b));
            }
        }
        out
    }
}

/// One point of a [`Sweep`] grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Flat row-major index.
    pub index: usize,
    /// Per-axis value indices.
    pub coords: Vec<usize>,
    /// Per-axis value labels.
    pub labels: Vec<String>,
}

impl Cell {
    /// The value index along axis `axis`.
    pub fn coord(&self, axis: usize) -> usize {
        self.coords[axis]
    }
}

/// Why one sweep cell failed without producing a result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The cell's closure panicked; the payload is in
    /// [`CellFailure::reason`].
    Panic,
    /// The spec failed to build into a scenario.
    Build,
    /// The quantum-budget watchdog aborted a runaway cell.
    Watchdog {
        /// Quanta the cell had consumed when aborted.
        quanta: u64,
        /// The configured budget it exceeded.
        budget: u64,
    },
    /// The run supervisor aborted the cell for another reason.
    Aborted,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panicked"),
            FailureKind::Build => write!(f, "failed to build"),
            FailureKind::Watchdog { quanta, budget } => {
                write!(f, "watchdog ({quanta} quanta > budget {budget})")
            }
            FailureKind::Aborted => write!(f, "aborted"),
        }
    }
}

/// One failed sweep cell: which cell, how it failed, and why.
///
/// Carried by [`SweepOutcome::failures`] so a sweep with one bad cell
/// still yields every other cell's result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Index of the failed cell in the spec slice.
    pub index: usize,
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic payload, build error, abort
    /// reason).
    pub reason: String,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {} {}: {}", self.index, self.kind, self.reason)
    }
}

/// The result of a fault-tolerant sweep: per-cell results (in spec
/// order, `None` for failed cells) plus the recorded failures.
#[derive(Debug)]
pub struct SweepOutcome {
    /// `runs[i]` is `Some` iff cell `i` completed.
    pub runs: Vec<Option<ScenarioRun>>,
    /// Failures in cell-index order; empty for a clean sweep.
    pub failures: Vec<CellFailure>,
}

impl SweepOutcome {
    /// Whether every cell completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The completed runs, in spec order, if the sweep was clean.
    ///
    /// # Errors
    ///
    /// Returns the failures otherwise.
    pub fn into_runs(self) -> Result<Vec<ScenarioRun>, Vec<CellFailure>> {
        if self.failures.is_empty() {
            // No failures means every slot is Some by construction.
            Ok(self.runs.into_iter().map(Option::unwrap).collect())
        } else {
            Err(self.failures)
        }
    }
}

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces; anything else is labelled opaquely).
fn panic_reason(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes experiment cells across scoped threads, collecting results
/// deterministically by cell index.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    derive_seeds: bool,
    replica: Option<u64>,
    cache: Option<ResultCache>,
    ckpt: Option<CkptStore>,
    ckpt_every: u64,
    quantum_budget: Option<u64>,
}

impl Default for SweepRunner {
    /// Serial execution (one thread) with the spec's own seeds — the
    /// exact behaviour of the historical hand-rolled loops.
    fn default() -> Self {
        SweepRunner::serial()
    }
}

impl SweepRunner {
    /// A serial (single-thread) runner.
    pub fn serial() -> Self {
        SweepRunner::with_threads(1)
    }

    /// A runner fanning cells out over `threads` OS threads (clamped to
    /// at least 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            derive_seeds: false,
            replica: None,
            cache: None,
            ckpt: None,
            ckpt_every: 0,
            quantum_budget: None,
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables per-cell seed derivation: cell `i` runs with
    /// [`derive_seed`]`(spec_seed, i)` instead of the spec's seed.
    /// Default off — the paper's protocol runs every cell from the same
    /// seed.
    pub fn derive_seeds(mut self, on: bool) -> Self {
        self.derive_seeds = on;
        self
    }

    /// Selects replica `r` of a replicated sweep: cell `i` runs with the
    /// doubly-derived seed [`derive_seed`]`(`[`derive_seed`]`(spec_seed,
    /// r), i)` — decorrelated across both replicas and cells, and a pure
    /// function of `(spec, r, i)`, so every `(cell, replica)` pair keys
    /// the result cache independently and warm re-runs stay warm.
    /// Overrides [`SweepRunner::derive_seeds`].
    pub fn replica(mut self, r: u64) -> Self {
        self.replica = Some(r);
        self
    }

    /// Enables content-addressed result caching under `dir`: cells whose
    /// effective spec (post seed-derivation) hashes to a stored
    /// [`a4_core::RunReport`] are loaded instead of simulated, and every
    /// simulated cell is stored. The simulator is deterministic, so
    /// tables built from cached reports are byte-identical to cold runs;
    /// see [`crate::cache`] for the key contents and when to bust it.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = Some(ResultCache::new(dir));
        self
    }

    /// Attaches an already-constructed store — the hook for a store on
    /// a non-default filesystem ([`ResultCache::with_fs`], fault
    /// injection).
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The result cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Enables periodic checkpointing through `store`: every `every`
    /// quanta (per cell, at logical-second granularity, `0` = never)
    /// [`SweepRunner::run_specs_robust`] snapshots the cell's complete
    /// simulation state, and a later run of the same cell resumes from
    /// the latest valid checkpoint bit-identically.
    pub fn with_ckpt(mut self, store: CkptStore, every: u64) -> Self {
        self.ckpt = Some(store);
        self.ckpt_every = every;
        self
    }

    /// The checkpoint store, if checkpointing is enabled.
    pub fn ckpt_store(&self) -> Option<&CkptStore> {
        self.ckpt.as_ref()
    }

    /// Arms the runaway-cell watchdog: a cell that consumes more than
    /// `budget` quanta is aborted with a typed
    /// [`FailureKind::Watchdog`] failure instead of starving the sweep.
    pub fn with_quantum_budget(mut self, budget: u64) -> Self {
        self.quantum_budget = Some(budget);
        self
    }

    /// Maps `f` over `items` in parallel, catching per-item panics;
    /// `results[i]` corresponds to `items[i]` regardless of thread
    /// count, with a panicking item yielding `Err(payload)` while every
    /// other item still completes.
    fn map_caught<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, Box<dyn Any + Send>>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let run = |i: usize, t: &T| catch_unwind(AssertUnwindSafe(|| f(i, t)));
        let threads = self.threads.min(items.len()).max(1);
        if threads == 1 {
            return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<R, _>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = run(i, &items[i]);
                    // `run` caught any panic, so no worker can poison
                    // the results mutex.
                    results.lock().expect("workers cannot panic")[i] = Some(r);
                });
            }
        });
        results
            .into_inner()
            .expect("all workers joined")
            .into_iter()
            .map(|r| r.expect("every index visited exactly once"))
            .collect()
    }

    /// Maps `f` over `items` in parallel; `results[i] == f(i,
    /// &items[i])` regardless of thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first (by item index) panic from `f` with its
    /// original payload, after every non-panicking item has completed.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        let mut caught = None;
        for r in self.map_caught(items, f) {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => {
                    caught.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = caught {
            std::panic::resume_unwind(payload);
        }
        out
    }

    /// Builds and runs every spec, in parallel, returning the runs in
    /// spec order. With a cache attached ([`SweepRunner::with_cache_dir`])
    /// cells present in the cache are loaded instead of simulated.
    ///
    /// # Errors
    ///
    /// Returns the first (by cell index) build failure.
    pub fn run_specs(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioRun>, SpecError> {
        let runs = self.map(specs, |i, spec| {
            let spec = if let Some(r) = self.replica {
                spec.clone()
                    .with_seed(derive_seed(derive_seed(spec.opts.seed, r), i as u64))
            } else if self.derive_seeds {
                spec.clone()
                    .with_seed(derive_seed(spec.opts.seed, i as u64))
            } else {
                spec.clone()
            };
            if let Some(cache) = &self.cache {
                let key = spec_key(&spec);
                if let Some(report) = cache.load(&key) {
                    return Ok(spec.run_from_report(report));
                }
                return spec.build().map(|scenario| {
                    let run = scenario.run();
                    cache.store(&key, &run.report);
                    run
                });
            }
            spec.build().map(crate::spec::Scenario::run)
        });
        runs.into_iter().collect()
    }

    /// The effective spec of cell `i` after seed derivation — the same
    /// transformation [`SweepRunner::run_specs`] applies.
    fn effective_spec(&self, i: usize, spec: &ScenarioSpec) -> ScenarioSpec {
        if let Some(r) = self.replica {
            spec.clone()
                .with_seed(derive_seed(derive_seed(spec.opts.seed, r), i as u64))
        } else if self.derive_seeds {
            spec.clone()
                .with_seed(derive_seed(spec.opts.seed, i as u64))
        } else {
            spec.clone()
        }
    }

    /// Builds the cell's scenario, resuming from a valid checkpoint
    /// when one exists: returns the scenario plus the resume point
    /// (`start_second`, recorded samples). Any restore failure falls
    /// back to a **freshly rebuilt** scenario from quantum 0 — a
    /// half-restored system is never run.
    fn resume_or_fresh(
        &self,
        spec: &ScenarioSpec,
        key: &str,
    ) -> Result<(Scenario, u64, Vec<MonitorSample>), SpecError> {
        let mut scenario = spec.build()?;
        let Some(store) = &self.ckpt else {
            return Ok((scenario, 0, Vec::new()));
        };
        let Some(ckpt) = store.load(key) else {
            return Ok((scenario, 0, Vec::new()));
        };
        let total = spec.opts.warmup + spec.opts.measure;
        let restored = ckpt.seconds_done > 0
            && ckpt.seconds_done < total
            && scenario.harness.system_mut().restore_state(&ckpt.system)
            && match scenario.harness.policy_mut() {
                Some(policy) => policy.restore_ckpt(&ckpt.policy),
                None => matches!(ckpt.policy, PolicyState::Stateless),
            };
        if restored {
            store.note_resumed();
            Ok((scenario, ckpt.seconds_done, ckpt.samples))
        } else {
            // The system restore may have succeeded while the policy
            // restore failed (or vice versa): discard the checkpoint
            // and rebuild from the spec so no partial state survives.
            store.discard(key);
            spec.build().map(|s| (s, 0, Vec::new()))
        }
    }

    /// Runs one cell under supervision: cache lookup, checkpoint
    /// resume, watchdog, checkpointed execution, store + cleanup.
    fn run_one(&self, i: usize, spec: &ScenarioSpec) -> Result<ScenarioRun, CellFailure> {
        let spec = self.effective_spec(i, spec);
        let key = spec_key(&spec);
        if let Some(cache) = &self.cache {
            if let Some(report) = cache.load(&key) {
                if let Some(store) = &self.ckpt {
                    // A finished cell's leftover checkpoint is dead
                    // weight; drop it.
                    store.remove(&key);
                }
                return Ok(spec.run_from_report(report));
            }
        }
        let (scenario, start_second, samples) =
            self.resume_or_fresh(&spec, &key).map_err(|e| CellFailure {
                index: i,
                kind: FailureKind::Build,
                reason: e.to_string(),
            })?;
        let start_quanta = scenario.harness.system().quantum_count();
        let mut supervisor = CellSupervisor::new(
            self.ckpt.as_ref(),
            &key,
            self.ckpt_every,
            self.quantum_budget,
            start_quanta,
        );
        match scenario.run_supervised(start_second, samples, &mut supervisor) {
            Ok(run) => {
                if let Some(cache) = &self.cache {
                    cache.store(&key, &run.report);
                }
                if let Some(store) = &self.ckpt {
                    store.remove(&key);
                }
                Ok(run)
            }
            Err(aborted) => Err(CellFailure {
                index: i,
                kind: supervisor
                    .tripped()
                    .map_or(FailureKind::Aborted, |(quanta, budget)| {
                        FailureKind::Watchdog { quanta, budget }
                    }),
                reason: aborted.to_string(),
            }),
        }
    }

    /// The fault-tolerant variant of [`SweepRunner::run_specs`]: a cell
    /// that panics, fails to build, or trips the quantum-budget
    /// watchdog becomes a recorded [`CellFailure`] while every other
    /// cell still completes. With a checkpoint store attached
    /// ([`SweepRunner::with_ckpt`]) cells additionally snapshot their
    /// state every `every` quanta and resume from the latest valid
    /// checkpoint on re-execution.
    pub fn run_specs_robust(&self, specs: &[ScenarioSpec]) -> SweepOutcome {
        let results = self.map_caught(specs, |i, spec| self.run_one(i, spec));
        let mut runs = Vec::with_capacity(specs.len());
        let mut failures = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(Ok(run)) => runs.push(Some(run)),
                Ok(Err(failure)) => {
                    runs.push(None);
                    failures.push(failure);
                }
                Err(payload) => {
                    runs.push(None);
                    failures.push(CellFailure {
                        index: i,
                        kind: FailureKind::Panic,
                        reason: panic_reason(payload.as_ref()),
                    });
                }
            }
        }
        SweepOutcome { runs, failures }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunOpts;

    #[test]
    fn cartesian_cells_are_row_major() {
        let sweep = Sweep::over("a", ["x", "y"]).and("b", [1, 2, 3]);
        assert_eq!(sweep.len(), 6);
        assert!(!sweep.is_empty());
        let cells = sweep.cells();
        assert_eq!(cells[0].labels, vec!["x", "1"]);
        assert_eq!(cells[2].labels, vec!["x", "3"]);
        assert_eq!(cells[3].labels, vec!["y", "1"]);
        assert_eq!(cells[5].coords, vec![1, 2]);
        assert_eq!(cells[4].coord(1), 1);
    }

    #[test]
    fn typed_grids_enumerate_in_label_grid_order() {
        // The satellite guarantee: a typed grid and the label-only Sweep
        // built from the same axes produce identical cell orders.
        let typed = TypedSweep2::new(
            TypedAxis::labeled("a", ["x", "y"]),
            TypedAxis::labeled("b", [1, 2, 3]),
        );
        let label_sweep = Sweep::over("a", ["x", "y"]).and("b", [1, 2, 3]);
        assert_eq!(typed.sweep(), label_sweep);
        assert_eq!(typed.len(), label_sweep.len());
        let typed_cells: Vec<Vec<String>> = typed.map(|a, b| vec![a.to_string(), b.to_string()]);
        let label_cells: Vec<Vec<String>> =
            label_sweep.cells().into_iter().map(|c| c.labels).collect();
        assert_eq!(typed_cells, label_cells);
        // Custom labels decouple display from value without reordering.
        let custom = TypedSweep2::new(
            TypedAxis::new("a", [(10u64, "ten"), (20, "twenty")]),
            TypedAxis::labeled("b", [true, false]),
        );
        assert_eq!(custom.sweep().axes[0].values, vec!["ten", "twenty"]);
        assert_eq!(
            custom.map(|&a, &b| (a, b)),
            vec![(10, true), (10, false), (20, true), (20, false)]
        );
        assert!(!custom.is_empty());
        assert!(!custom.a.is_empty());
    }

    #[test]
    fn map_is_order_preserving_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let square = |_: usize, x: &u64| x * x;
        let serial = SweepRunner::serial().map(&items, square);
        for threads in [2, 4, 16, 64] {
            let parallel = SweepRunner::with_threads(threads).map(&items, square);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(0xA4, 0);
        let b = derive_seed(0xA4, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(0xA4, 0));
    }

    #[test]
    fn replicas_are_deterministic_and_distinct() {
        let spec = crate::spec::ScenarioSpec::new(
            "replica-cell",
            RunOpts {
                warmup: 1,
                measure: 2,
                seed: 0xA4,
            },
        )
        .with_workload(
            "xmem3",
            crate::spec::WorkloadSpec::XMem { instance: 3 },
            &[0],
            a4_model::Priority::Low,
        );
        let specs = [spec];
        let ipc = |r: u64| {
            let runs = SweepRunner::serial().replica(r).run_specs(&specs).unwrap();
            runs[0].ipc("xmem3").to_bits()
        };
        // Distinct replicas simulate distinct runs; the same replica is
        // bit-reproducible.
        assert_ne!(ipc(0), ipc(1));
        assert_eq!(ipc(1), ipc(1));
    }

    fn xmem_spec(instance: u8, tag: &str) -> crate::spec::ScenarioSpec {
        crate::spec::ScenarioSpec::new(
            format!("robust-{tag}-{instance}"),
            RunOpts {
                warmup: 1,
                measure: 2,
                seed: 0xA4,
            },
        )
        .with_workload(
            "xmem",
            crate::spec::WorkloadSpec::XMem { instance },
            &[0],
            a4_model::Priority::Low,
        )
    }

    #[test]
    fn panicking_cell_yields_every_other_result() {
        // The satellite regression: one deliberately panicking cell
        // must not tear down the sweep (the old collection path died
        // re-locking a poisoned mutex, masking the original payload) —
        // every other cell's result survives and the failure carries
        // the panic payload and spec index.
        let items: Vec<u64> = (0..9).collect();
        for threads in [1, 4] {
            let runner = SweepRunner::with_threads(threads);
            let results = runner.map_caught(&items, |i, &x| {
                assert!(i != 5, "cell five detonates");
                x * 10
            });
            for (i, r) in results.iter().enumerate() {
                if i == 5 {
                    assert!(r.is_err(), "threads={threads}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn map_propagates_the_first_panic_by_index() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            SweepRunner::with_threads(4).map(&items, |i, &x| {
                if i >= 6 {
                    panic!("boom at {i}");
                }
                x
            });
        }))
        .expect_err("map re-panics");
        assert_eq!(panic_reason(caught.as_ref()), "boom at 6");
    }

    #[test]
    fn robust_sweep_matches_plain_path() {
        // Supervision must be transparent: a clean robust sweep yields
        // bit-identical reports to run_specs, serial or parallel.
        let specs: Vec<_> = (1..=3).map(|i| xmem_spec(i, "clean")).collect();
        let outcome = SweepRunner::with_threads(2).run_specs_robust(&specs);
        assert!(outcome.is_clean(), "{:?}", outcome.failures);
        assert_eq!(outcome.runs.iter().flatten().count(), 3);
        let runs = outcome.into_runs().unwrap();
        let plain = SweepRunner::serial().run_specs(&specs).unwrap();
        for (r, p) in runs.iter().zip(&plain) {
            assert_eq!(r.ipc("xmem").to_bits(), p.ipc("xmem").to_bits());
        }
    }

    #[test]
    fn watchdog_aborts_runaway_cells_with_typed_failure() {
        let specs: Vec<_> = (1..=3).map(|i| xmem_spec(i, "watchdog")).collect();
        // Budget of 1 quantum: every cell exceeds it after its first
        // logical second.
        let outcome = SweepRunner::serial()
            .with_quantum_budget(1)
            .run_specs_robust(&specs);
        assert_eq!(outcome.failures.len(), 3);
        for (i, failure) in outcome.failures.iter().enumerate() {
            assert_eq!(failure.index, i);
            assert!(
                matches!(failure.kind, FailureKind::Watchdog { quanta, budget: 1 } if quanta > 1),
                "{failure}"
            );
            assert!(failure.reason.contains("quantum budget"), "{failure}");
        }
        // A generous budget lets the same cells complete.
        let outcome = SweepRunner::serial()
            .with_quantum_budget(u64::MAX)
            .run_specs_robust(&specs);
        assert!(outcome.is_clean());
    }

    #[test]
    fn checkpointed_resume_is_bit_identical() {
        use crate::supervise::CkptStore;
        let dir = std::env::temp_dir().join(format!("a4-runner-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let specs = vec![xmem_spec(2, "resume")];
        let reference = SweepRunner::serial().run_specs(&specs).unwrap();

        // Run under an aggressive checkpoint cadence, then abort the
        // cell mid-run via a watchdog budget that admits the first
        // logical second (1000 quanta) but not the second — the
        // checkpoint survives the "crash".
        let store = CkptStore::new(&dir);
        let outcome = SweepRunner::serial()
            .with_ckpt(store.clone(), 1)
            .with_quantum_budget(1500)
            .run_specs_robust(&specs);
        assert!(!outcome.is_clean(), "watchdog killed the cell");
        assert!(store.saved() > 0, "a checkpoint landed before the abort");

        // A fresh runner (new process equivalent) resumes and finishes
        // bit-identically to the uninterrupted reference.
        let store2 = CkptStore::new(&dir);
        let outcome = SweepRunner::serial()
            .with_ckpt(store2.clone(), 1_000_000)
            .run_specs_robust(&specs);
        assert!(outcome.is_clean(), "{:?}", outcome.failures);
        assert_eq!(store2.resumed(), 1, "resumed from the checkpoint");
        let resumed = outcome.into_runs().unwrap();
        assert_eq!(
            serde_json::to_string(&resumed[0].report).unwrap(),
            serde_json::to_string(&reference[0].report).unwrap(),
            "resume-and-continue is bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_specs_parallel_matches_serial() {
        let specs: Vec<_> = [64u64, 1024]
            .iter()
            .map(|&pkt| {
                crate::spec::ScenarioSpec::new(
                    format!("cell-{pkt}"),
                    RunOpts {
                        warmup: 1,
                        measure: 2,
                        seed: 0xA4,
                    },
                )
                .with_nic(2, pkt)
                .with_workload(
                    "dpdk",
                    crate::spec::WorkloadSpec::Dpdk {
                        device: "nic".into(),
                        touch: true,
                    },
                    &[0, 1],
                    a4_model::Priority::High,
                )
            })
            .collect();
        let serial = SweepRunner::serial().run_specs(&specs).unwrap();
        let parallel = SweepRunner::with_threads(4).run_specs(&specs).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.perf("dpdk"), p.perf("dpdk"));
            assert_eq!(
                s.report.total_io_bytes(s.id("dpdk")),
                p.report.total_io_bytes(p.id("dpdk"))
            );
        }
    }
}
