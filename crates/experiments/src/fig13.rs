//! Fig. 13: real-world colocations under Default / Isolate / A4-a..d.
//!
//! Two scenarios (§7.2):
//!
//! * **HPW-heavy** — 7 HPWs (Fastclick, Redis-S/C, x264, parest,
//!   xalancbmk, FFSB-H) + 4 LPWs (lbm, omnetpp, exchange2, bwaves);
//!   detected antagonists in the paper: FFSB-H, lbm, bwaves.
//! * **LPW-heavy** — 4 HPWs (Fastclick, FFSB-L, mcf, blender) + 8 LPWs
//!   (FFSB-H, Redis-S/C, x264, parest, fotonik3d, lbm, bwaves);
//!   antagonists: FFSB-H, fotonik3d, lbm, bwaves.
//!
//! Performance metric per the paper: throughput (completed operations)
//! for the multi-threaded I/O workloads, IPC for the single-threaded
//! ones (each placement's [`Metric`](crate::spec::Metric)); everything
//! normalized to the Default model.

use crate::runner::SweepRunner;
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;

fn spec_cpu(benchmark: &str) -> WorkloadSpec {
    WorkloadSpec::SpecCpu {
        benchmark: benchmark.into(),
    }
}

/// The colocation mix of one panel as a declarative cell.
pub fn mix_spec(opts: &RunOpts, scheme: Scheme, hpw_heavy: bool) -> ScenarioSpec {
    use Priority::{High, Low};
    let panel = if hpw_heavy { "hpw-heavy" } else { "lpw-heavy" };
    let base = ScenarioSpec::new(format!("fig13 {panel} {}", scheme.label()), *opts)
        .with_nic(4, 1024)
        .with_ssd();
    let spec = if hpw_heavy {
        base.with_workload(
            "Fastclick",
            WorkloadSpec::Fastclick {
                device: "nic".into(),
            },
            &[0, 1, 2, 3],
            High,
        )
        .with_workload("Redis-S", WorkloadSpec::RedisServer, &[4], High)
        .with_workload("Redis-C", WorkloadSpec::RedisClient, &[5], High)
        .with_workload("x264", spec_cpu("x264"), &[6], High)
        .with_workload("parest", spec_cpu("parest"), &[7], High)
        .with_workload("xalancbmk", spec_cpu("xalancbmk"), &[8], High)
        .with_workload(
            "FFSB-H",
            WorkloadSpec::FfsbHeavy {
                device: "ssd".into(),
            },
            &[9, 10, 11],
            High,
        )
        .with_workload("lbm", spec_cpu("lbm"), &[12], Low)
        .with_workload("omnetpp", spec_cpu("omnetpp"), &[13], Low)
        .with_workload("exchange2", spec_cpu("exchange2"), &[14], Low)
        .with_workload("bwaves", spec_cpu("bwaves"), &[15], Low)
    } else {
        base.with_workload(
            "Fastclick",
            WorkloadSpec::Fastclick {
                device: "nic".into(),
            },
            &[0, 1, 2, 3],
            High,
        )
        .with_workload(
            "FFSB-L",
            WorkloadSpec::FfsbLight {
                device: "ssd".into(),
            },
            &[4],
            High,
        )
        .with_workload("mcf", spec_cpu("mcf"), &[5], High)
        .with_workload("blender", spec_cpu("blender"), &[6], High)
        .with_workload(
            "FFSB-H",
            WorkloadSpec::FfsbHeavy {
                device: "ssd".into(),
            },
            &[7, 8, 9],
            Low,
        )
        .with_workload("Redis-S", WorkloadSpec::RedisServer, &[10], Low)
        .with_workload("Redis-C", WorkloadSpec::RedisClient, &[11], Low)
        .with_workload("x264", spec_cpu("x264"), &[12], Low)
        .with_workload("parest", spec_cpu("parest"), &[13], Low)
        .with_workload("fotonik3d", spec_cpu("fotonik3d"), &[14], Low)
        .with_workload("lbm", spec_cpu("lbm"), &[15], Low)
        .with_workload("bwaves", spec_cpu("bwaves"), &[16], Low)
    };
    spec.with_scheme(scheme)
}

/// Builds one scenario and runs it under `scheme`.
pub fn run_mix(opts: &RunOpts, scheme: Scheme, hpw_heavy: bool) -> ScenarioRun {
    mix_spec(opts, scheme, hpw_heavy)
        .build()
        .expect("static fig13 layout")
        .run()
}

/// All six scheme cells of one panel.
pub fn specs(opts: &RunOpts, hpw_heavy: bool) -> Vec<ScenarioSpec> {
    Scheme::all_six()
        .into_iter()
        .map(|s| mix_spec(opts, s, hpw_heavy))
        .collect()
}

/// Runs one scenario across all six schemes, serially.
pub fn run(opts: &RunOpts, hpw_heavy: bool) -> Table {
    run_with(opts, hpw_heavy, &SweepRunner::serial())
}

/// Runs one scenario across all six schemes, fanning the cells out over
/// `runner`; rows are workloads plus the Avg(HP)/Avg(LP)/Avg(all)
/// summary rows, columns are relative performance per scheme (normalized
/// to Default) plus the A4-d LLC hit rate.
pub fn run_with(opts: &RunOpts, hpw_heavy: bool, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs(opts, hpw_heavy))
        .expect("static fig13 layout");
    table(hpw_heavy, &runs)
}

/// Renders one panel from the runs of [`specs`] (same order, one run per
/// scheme of [`Scheme::all_six`]).
pub fn table(hpw_heavy: bool, runs: &[ScenarioRun]) -> Table {
    let (id, title) = if hpw_heavy {
        ("fig13a", "HPW-heavy colocation (7 HPW + 4 LPW)")
    } else {
        ("fig13b", "LPW-heavy colocation (4 HPW + 8 LPW)")
    };
    let mut columns: Vec<String> = Scheme::all_six()
        .iter()
        .map(|s| format!("perf_{}", s.label()))
        .collect();
    columns.push("llc_hit_A4-d".into());
    let mut table = Table::new(id, title, columns);

    let default_run = &runs[0];
    let a4d_run = &runs[runs.len() - 1];

    let n = default_run.workloads.len();
    let mut rel = vec![vec![0.0; runs.len()]; n];
    for (si, run) in runs.iter().enumerate() {
        for (wi, binding) in run.workloads.iter().enumerate() {
            let base = default_run.perf(&default_run.workloads[wi].role).max(1e-12);
            rel[wi][si] = run.perf(&binding.role) / base;
        }
    }
    for (wi, binding) in default_run.workloads.iter().enumerate() {
        let mut row = rel[wi].clone();
        row.push(a4d_run.llc_hit_rate(&binding.role));
        table.push(binding.role.clone(), row);
    }
    // Summary rows.
    for (label, filter) in [
        ("Avg(HP)", Some(Priority::High)),
        ("Avg(LP)", Some(Priority::Low)),
        ("Avg(all)", None),
    ] {
        let idxs: Vec<usize> = default_run
            .workloads
            .iter()
            .enumerate()
            .filter(|(_, b)| filter.is_none_or(|p| b.priority == p))
            .map(|(i, _)| i)
            .collect();
        let mut row: Vec<f64> = (0..runs.len())
            .map(|si| idxs.iter().map(|&i| rel[i][si]).sum::<f64>() / idxs.len() as f64)
            .collect();
        let hit = idxs
            .iter()
            .map(|&i| a4d_run.llc_hit_rate(&a4d_run.workloads[i].role))
            .sum::<f64>()
            / idxs.len() as f64;
        row.push(hit);
        table.push(label, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn mixes_have_the_papers_population() {
        let opts = RunOpts::quick();
        let hpw = mix_spec(&opts, Scheme::Default, true);
        assert_eq!(hpw.workloads.len(), 11);
        assert_eq!(
            hpw.workloads
                .iter()
                .filter(|p| p.priority == Priority::High)
                .count(),
            7
        );
        let lpw = mix_spec(&opts, Scheme::Default, false);
        assert_eq!(lpw.workloads.len(), 12);
        assert_eq!(
            lpw.workloads
                .iter()
                .filter(|p| p.priority == Priority::High)
                .count(),
            4
        );
    }

    #[test]
    fn a4d_beats_default_for_hpws() {
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let default_run = run_mix(&opts, Scheme::Default, true);
        let a4_run = run_mix(&opts, Scheme::A4(FeatureLevel::D), true);
        let mut gain = 0.0;
        let mut count = 0;
        for binding in &default_run.workloads {
            if binding.priority == Priority::High {
                gain += a4_run.perf(&binding.role) / default_run.perf(&binding.role).max(1e-12);
                count += 1;
            }
        }
        let avg = gain / count as f64;
        assert!(
            avg > 1.0,
            "A4-d must improve HPWs on average, got {avg:.3}x"
        );
    }
}
