//! Fig. 13: real-world colocations under Default / Isolate / A4-a..d.
//!
//! Two scenarios (§7.2):
//!
//! * **HPW-heavy** — 7 HPWs (Fastclick, Redis-S/C, x264, parest,
//!   xalancbmk, FFSB-H) + 4 LPWs (lbm, omnetpp, exchange2, bwaves);
//!   detected antagonists in the paper: FFSB-H, lbm, bwaves.
//! * **LPW-heavy** — 4 HPWs (Fastclick, FFSB-L, mcf, blender) + 8 LPWs
//!   (FFSB-H, Redis-S/C, x264, parest, fotonik3d, lbm, bwaves);
//!   antagonists: FFSB-H, fotonik3d, lbm, bwaves.
//!
//! Performance metric per the paper: throughput (completed operations)
//! for the multi-threaded I/O workloads, IPC for the single-threaded
//! ones; everything normalized to the Default model.

use crate::scenario::{self, RunOpts, Scheme};
use crate::table::Table;
use a4_core::{Harness, RunReport};
use a4_model::{Priority, WorkloadId};
use a4_workloads::RedisRole;

/// One registered workload of the mix.
#[derive(Debug, Clone)]
pub struct MixEntry {
    /// Display name.
    pub name: &'static str,
    /// The id within the run.
    pub id: WorkloadId,
    /// Declared priority.
    pub priority: Priority,
    /// True if performance is measured as throughput (ops) rather than
    /// IPC.
    pub throughput_metric: bool,
}

/// Builds one scenario and runs it under `scheme`.
pub fn run_mix(opts: &RunOpts, scheme: Scheme, hpw_heavy: bool) -> (RunReport, Vec<MixEntry>) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let mut entries = Vec::new();
    let add = |name: &'static str,
               id: a4_model::Result<WorkloadId>,
               priority: Priority,
               tp: bool,
               entries: &mut Vec<MixEntry>| {
        entries.push(MixEntry {
            name,
            id: id.expect("scenario cores are laid out statically"),
            priority,
            throughput_metric: tp,
        });
    };

    use Priority::{High, Low};
    if hpw_heavy {
        let id = scenario::add_fastclick(&mut sys, nic, &[0, 1, 2, 3], High);
        add("Fastclick", id, High, true, &mut entries);
        let id = scenario::add_redis(&mut sys, RedisRole::Server, 4, High);
        add("Redis-S", id, High, false, &mut entries);
        let id = scenario::add_redis(&mut sys, RedisRole::Client, 5, High);
        add("Redis-C", id, High, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "x264", 6, High);
        add("x264", id, High, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "parest", 7, High);
        add("parest", id, High, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "xalancbmk", 8, High);
        add("xalancbmk", id, High, false, &mut entries);
        let id = scenario::add_ffsb_heavy(&mut sys, ssd, &[9, 10, 11], High);
        add("FFSB-H", id, High, true, &mut entries);
        let id = scenario::add_spec(&mut sys, "lbm", 12, Low);
        add("lbm", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "omnetpp", 13, Low);
        add("omnetpp", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "exchange2", 14, Low);
        add("exchange2", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "bwaves", 15, Low);
        add("bwaves", id, Low, false, &mut entries);
    } else {
        let id = scenario::add_fastclick(&mut sys, nic, &[0, 1, 2, 3], High);
        add("Fastclick", id, High, true, &mut entries);
        let id = scenario::add_ffsb_light(&mut sys, ssd, 4, High);
        add("FFSB-L", id, High, true, &mut entries);
        let id = scenario::add_spec(&mut sys, "mcf", 5, High);
        add("mcf", id, High, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "blender", 6, High);
        add("blender", id, High, false, &mut entries);
        let id = scenario::add_ffsb_heavy(&mut sys, ssd, &[7, 8, 9], Low);
        add("FFSB-H", id, Low, true, &mut entries);
        let id = scenario::add_redis(&mut sys, RedisRole::Server, 10, Low);
        add("Redis-S", id, Low, false, &mut entries);
        let id = scenario::add_redis(&mut sys, RedisRole::Client, 11, Low);
        add("Redis-C", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "x264", 12, Low);
        add("x264", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "parest", 13, Low);
        add("parest", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "fotonik3d", 14, Low);
        add("fotonik3d", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "lbm", 15, Low);
        add("lbm", id, Low, false, &mut entries);
        let id = scenario::add_spec(&mut sys, "bwaves", 16, Low);
        add("bwaves", id, Low, false, &mut entries);
    }

    let mut harness = Harness::new(sys);
    harness.attach_policy(scheme.policy());
    let report = harness.run(opts.warmup, opts.measure);
    (report, entries)
}

/// Absolute performance of one workload under one run.
pub fn perf(report: &RunReport, entry: &MixEntry) -> f64 {
    if entry.throughput_metric {
        report.total_ops(entry.id) as f64
    } else {
        report.ipc(entry.id)
    }
}

/// Runs one scenario across all six schemes; rows are workloads plus the
/// Avg(HP)/Avg(LP)/Avg(all) summary rows, columns are relative
/// performance per scheme (normalized to Default) plus the A4-d LLC hit
/// rate.
pub fn run(opts: &RunOpts, hpw_heavy: bool) -> Table {
    let (id, title) = if hpw_heavy {
        ("fig13a", "HPW-heavy colocation (7 HPW + 4 LPW)")
    } else {
        ("fig13b", "LPW-heavy colocation (4 HPW + 8 LPW)")
    };
    let mut columns: Vec<String> = Scheme::all_six()
        .iter()
        .map(|s| format!("perf_{}", s.label()))
        .collect();
    columns.push("llc_hit_A4-d".into());
    let mut table = Table::new(id, title, columns);

    let runs: Vec<(Scheme, RunReport, Vec<MixEntry>)> = Scheme::all_six()
        .into_iter()
        .map(|s| {
            let (report, entries) = run_mix(opts, s, hpw_heavy);
            (s, report, entries)
        })
        .collect();
    let (_, default_report, default_entries) = &runs[0];
    let (_, a4d_report, a4d_entries) = &runs[runs.len() - 1];

    let n = default_entries.len();
    let mut rel = vec![vec![0.0; runs.len()]; n];
    for (si, (_, report, entries)) in runs.iter().enumerate() {
        for (wi, entry) in entries.iter().enumerate() {
            let base = perf(default_report, &default_entries[wi]).max(1e-12);
            rel[wi][si] = perf(report, entry) / base;
        }
    }
    for (wi, entry) in default_entries.iter().enumerate() {
        let mut row = rel[wi].clone();
        row.push(a4d_report.llc_hit_rate(a4d_entries[wi].id));
        table.push(entry.name, row);
    }
    // Summary rows.
    for (label, filter) in [
        ("Avg(HP)", Some(Priority::High)),
        ("Avg(LP)", Some(Priority::Low)),
        ("Avg(all)", None),
    ] {
        let idxs: Vec<usize> = default_entries
            .iter()
            .enumerate()
            .filter(|(_, e)| filter.is_none_or(|p| e.priority == p))
            .map(|(i, _)| i)
            .collect();
        let mut row: Vec<f64> = (0..runs.len())
            .map(|si| idxs.iter().map(|&i| rel[i][si]).sum::<f64>() / idxs.len() as f64)
            .collect();
        let hit = idxs
            .iter()
            .map(|&i| a4d_report.llc_hit_rate(a4d_entries[i].id))
            .sum::<f64>()
            / idxs.len() as f64;
        row.push(hit);
        table.push(label, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn mixes_have_the_papers_population() {
        let opts = RunOpts::quick();
        let (_, hpw) = run_mix(&opts, Scheme::Default, true);
        assert_eq!(hpw.len(), 11);
        assert_eq!(
            hpw.iter().filter(|e| e.priority == Priority::High).count(),
            7
        );
        let (_, lpw) = run_mix(&opts, Scheme::Default, false);
        assert_eq!(lpw.len(), 12);
        assert_eq!(
            lpw.iter().filter(|e| e.priority == Priority::High).count(),
            4
        );
    }

    #[test]
    fn a4d_beats_default_for_hpws() {
        let opts = RunOpts {
            warmup: 16,
            measure: 6,
            seed: 0xA4,
        };
        let (default_report, entries) = run_mix(&opts, Scheme::Default, true);
        let (a4_report, a4_entries) = run_mix(&opts, Scheme::A4(FeatureLevel::D), true);
        let mut gain = 0.0;
        let mut count = 0;
        for (d, a) in entries.iter().zip(&a4_entries) {
            if d.priority == Priority::High {
                gain += perf(&a4_report, a) / perf(&default_report, d).max(1e-12);
                count += 1;
            }
        }
        let avg = gain / count as f64;
        assert!(
            avg > 1.0,
            "A4-d must improve HPWs on average, got {avg:.3}x"
        );
    }
}
