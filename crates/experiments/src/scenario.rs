//! Shared scenario builders: the paper's testbed (Table 1) with its
//! workloads (Table 2/3) at simulator scale.

use a4_core::{
    A4Config, A4Controller, DefaultPolicy, FeatureLevel, Harness, IsolatePolicy, LlcPolicy,
    Thresholds,
};
use a4_model::{Bytes, CoreId, DeviceId, LineAddr, PortId, Priority, Result};
use a4_pcie::{NicConfig, NvmeConfig};
use a4_sim::{System, SystemConfig, Workload};
use a4_workloads::{scale, Dpdk, Fastclick, Ffsb, Fio, Redis, RedisRole, SpecCpu, XMem};

/// Ring entries per core: the paper's 2048-entry rings scaled by ≈36×,
/// rounded to a power of two.
pub const RING_ENTRIES: usize = 64;

/// Run-length options shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Warm-up logical seconds (discarded).
    pub warmup: u64,
    /// Measured logical seconds.
    pub measure: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RunOpts {
    /// Paper-like protocol scaled down: 10 s warm-up, 10 s measurement
    /// (the paper uses 70 s runs with 10 s warm-up windows).
    pub fn paper() -> Self {
        RunOpts {
            warmup: 10,
            measure: 10,
            seed: 0xA4,
        }
    }

    /// Long-converging protocol for the controller-driven experiments
    /// (A4 needs ~20 s to settle its zones in the colocation mixes).
    pub fn controller() -> Self {
        RunOpts {
            warmup: 22,
            measure: 10,
            seed: 0xA4,
        }
    }

    /// Fast settings for unit/integration tests.
    pub fn quick() -> Self {
        RunOpts {
            warmup: 3,
            measure: 3,
            seed: 0xA4,
        }
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        Self::paper()
    }
}

/// A fresh scaled Xeon Gold 6140 system.
pub fn base_system(opts: &RunOpts) -> System {
    let mut cfg = SystemConfig::xeon_gold_6140();
    cfg.seed = opts.seed;
    System::new(cfg)
}

/// Attaches the 100 Gbps NIC with one ring per serving core.
///
/// # Errors
///
/// Propagates attachment failures.
pub fn attach_nic(sys: &mut System, rings: usize, packet_bytes: u64) -> Result<DeviceId> {
    sys.attach_nic(
        PortId(0),
        NicConfig::connectx6_100g(rings, RING_ENTRIES, packet_bytes),
    )
}

/// Attaches the RAID-0 NVMe array.
///
/// # Errors
///
/// Propagates attachment failures.
pub fn attach_ssd(sys: &mut System) -> Result<DeviceId> {
    sys.attach_nvme(PortId(1), NvmeConfig::raid0_980pro_x4())
}

/// Block size in scaled lines for a paper block size in KiB.
pub fn block_lines(sys: &System, paper_kib: u64) -> u64 {
    scale::lines(Bytes::from_kib(paper_kib), sys.config().hierarchy.llc)
}

/// Working set in scaled lines for a paper size in MiB.
pub fn ws_lines_mib(sys: &System, paper_mib: u64) -> u64 {
    scale::lines(Bytes::from_mib(paper_mib), sys.config().hierarchy.llc)
}

/// Registers a DPDK instance (touching or not) on `cores`.
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_dpdk(
    sys: &mut System,
    nic: DeviceId,
    touch: bool,
    cores: &[u8],
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let wl: Box<dyn Workload> = if touch {
        Box::new(Dpdk::touching(nic))
    } else {
        Box::new(Dpdk::non_touching(nic))
    };
    sys.add_workload(wl, cores.iter().map(|&c| CoreId(c)).collect(), priority)
}

/// Registers a FIO instance with the paper's I/O depth of 32 *per
/// thread* (so 4 cores keep 128 commands in flight — the pressure that
/// makes large-block storage I/O leak out of the DCA ways).
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_fio(
    sys: &mut System,
    ssd: DeviceId,
    block_lines: u64,
    cores: &[u8],
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let qd_per_core = 32;
    let probe = Fio::new(ssd, LineAddr(0), block_lines, qd_per_core, cores.len());
    let buf = sys.alloc_lines(probe.buffer_lines());
    let fio = Fio::new(ssd, buf, block_lines, qd_per_core, cores.len());
    sys.add_workload(
        Box::new(fio),
        cores.iter().map(|&c| CoreId(c)).collect(),
        priority,
    )
}

/// Registers an X-Mem instance (1, 2 or 3 per Table 3).
///
/// # Errors
///
/// Propagates registration failures.
///
/// # Panics
///
/// Panics for instance numbers outside 1–3.
pub fn add_xmem(
    sys: &mut System,
    instance: u8,
    cores: &[u8],
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let geom = sys.config().hierarchy.llc;
    let wl: Box<dyn Workload> = match instance {
        1 => {
            let ws = scale::lines(Bytes::from_mib(4), geom);
            let base = sys.alloc_lines(ws);
            Box::new(XMem::instance_1(base, ws))
        }
        2 => {
            let ws = scale::lines(Bytes::from_mib(4), geom);
            let base = sys.alloc_lines(ws);
            Box::new(XMem::instance_2(base, ws))
        }
        3 => {
            let ws = scale::lines(Bytes::from_mib(10), geom);
            let base = sys.alloc_lines(ws);
            Box::new(XMem::instance_3(base, ws))
        }
        other => panic!("X-Mem instance {other} does not exist (Table 3 has 1-3)"),
    };
    sys.add_workload(wl, cores.iter().map(|&c| CoreId(c)).collect(), priority)
}

/// Registers a Fastclick instance.
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_fastclick(
    sys: &mut System,
    nic: DeviceId,
    cores: &[u8],
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    sys.add_workload(
        Box::new(Fastclick::new(nic)),
        cores.iter().map(|&c| CoreId(c)).collect(),
        priority,
    )
}

/// Registers FFSB-H (2 MB blocks, 3 cores in the paper).
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_ffsb_heavy(
    sys: &mut System,
    ssd: DeviceId,
    cores: &[u8],
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let lines = block_lines(sys, 2048);
    let probe = Ffsb::heavy(ssd, LineAddr(0), lines, cores.len());
    let buf = sys.alloc_lines(probe.buffer_lines());
    let ffsb = Ffsb::heavy(ssd, buf, lines, cores.len());
    sys.add_workload(
        Box::new(ffsb),
        cores.iter().map(|&c| CoreId(c)).collect(),
        priority,
    )
}

/// Registers FFSB-L (32 KB blocks, 1 core).
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_ffsb_light(
    sys: &mut System,
    ssd: DeviceId,
    core: u8,
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let lines = block_lines(sys, 32);
    let probe = Ffsb::light(ssd, LineAddr(0), lines);
    let buf = sys.alloc_lines(probe.buffer_lines());
    let ffsb = Ffsb::light(ssd, buf, lines);
    sys.add_workload(Box::new(ffsb), vec![CoreId(core)], priority)
}

/// Registers a Redis role (server or client).
///
/// # Errors
///
/// Propagates registration failures.
pub fn add_redis(
    sys: &mut System,
    role: RedisRole,
    core: u8,
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    // YCSB-A footprint: a few MB of keyspace, scaled.
    let ws = ws_lines_mib(sys, 2).max(64);
    let base = sys.alloc_lines(ws);
    sys.add_workload(
        Box::new(Redis::new(role, base, ws)),
        vec![CoreId(core)],
        priority,
    )
}

/// Registers a SPEC CPU2017-like synthetic by benchmark name.
///
/// # Errors
///
/// Propagates registration failures.
///
/// # Panics
///
/// Panics for unknown benchmark names (a fixed experiment vocabulary).
pub fn add_spec(
    sys: &mut System,
    name: &str,
    core: u8,
    priority: Priority,
) -> Result<a4_model::WorkloadId> {
    let geom = sys.config().hierarchy.llc;
    let probe = SpecCpu::from_profile(name, LineAddr(0), geom)
        .unwrap_or_else(|| panic!("unknown SPEC benchmark {name}"));
    let base = sys.alloc_lines(probe.ws_lines());
    let wl = SpecCpu::from_profile(name, base, geom).expect("name validated above");
    sys.add_workload(Box::new(wl), vec![CoreId(core)], priority)
}

/// An LLC-management scheme of the paper's §6: the two baselines and the
/// four A4 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Share everything, no CAT.
    Default,
    /// Static proportional partitions.
    Isolate,
    /// A4 at a given feature level (`FeatureLevel::D` = full A4).
    A4(FeatureLevel),
}

impl Scheme {
    /// The three schemes of Figs. 11-12.
    pub fn main_three() -> [Scheme; 3] {
        [
            Scheme::Default,
            Scheme::Isolate,
            Scheme::A4(FeatureLevel::D),
        ]
    }

    /// The six schemes of Figs. 13-14 (DF, IS, A4-a..d).
    pub fn all_six() -> [Scheme; 6] {
        [
            Scheme::Default,
            Scheme::Isolate,
            Scheme::A4(FeatureLevel::A),
            Scheme::A4(FeatureLevel::B),
            Scheme::A4(FeatureLevel::C),
            Scheme::A4(FeatureLevel::D),
        ]
    }

    /// Instantiates the policy object.
    pub fn policy(self) -> Box<dyn LlcPolicy> {
        match self {
            Scheme::Default => Box::new(DefaultPolicy::new()),
            Scheme::Isolate => Box::new(IsolatePolicy::new()),
            Scheme::A4(level) => Box::new(A4Controller::new(A4Config::with_level(
                level,
                Thresholds::scaled_sim(),
            ))),
        }
    }

    /// Display label ("DF", "IS", "A4-a", ...).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Default => "Default",
            Scheme::Isolate => "Isolate",
            Scheme::A4(FeatureLevel::A) => "A4-a",
            Scheme::A4(FeatureLevel::B) => "A4-b",
            Scheme::A4(FeatureLevel::C) => "A4-c",
            Scheme::A4(FeatureLevel::D) => "A4-d",
        }
    }
}

/// The §7.1 microbenchmark colocation: DPDK-T (4 cores) + FIO (4 cores,
/// 2 MB blocks) + X-Mem 1/2/3 — the facade quickstart.
///
/// # Panics
///
/// Panics only on programming errors (fixed cores/devices always fit the
/// default configuration).
pub fn microbench_mix(opts: RunOpts) -> Harness {
    let mut sys = base_system(&opts);
    let nic = attach_nic(&mut sys, 4, 1024).expect("port 0 free");
    let ssd = attach_ssd(&mut sys).expect("port 1 free");
    add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let blk = block_lines(&sys, 2048);
    add_fio(&mut sys, ssd, blk, &[4, 5, 6, 7], Priority::Low).expect("cores free");
    add_xmem(&mut sys, 1, &[8, 9], Priority::High).expect("cores free");
    add_xmem(&mut sys, 2, &[10], Priority::Low).expect("cores free");
    add_xmem(&mut sys, 3, &[11], Priority::Low).expect("cores free");
    Harness::new(sys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_parameters_are_sensible() {
        let opts = RunOpts::quick();
        let sys = base_system(&opts);
        // 2 MB paper block ≈ 910 scaled lines; 4 KB ≈ 2 lines.
        let big = block_lines(&sys, 2048);
        let small = block_lines(&sys, 4);
        assert!((800..=1024).contains(&big), "2MB scaled: {big}");
        assert!((1..=4).contains(&small), "4KB scaled: {small}");
        assert!(ws_lines_mib(&sys, 4) > ws_lines_mib(&sys, 2));
    }

    #[test]
    fn microbench_mix_builds_and_runs() {
        let mut h = microbench_mix(RunOpts::quick());
        let report = h.run_secs(2);
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.samples[0].workloads.len(), 5);
        assert!(report.total_instructions_all() > 0);
    }

    #[test]
    #[should_panic(expected = "X-Mem instance")]
    fn bad_xmem_instance_panics() {
        let mut sys = base_system(&RunOpts::quick());
        let _ = add_xmem(&mut sys, 4, &[0], Priority::Low);
    }
}
