//! Deprecated imperative scenario builders.
//!
//! This module is the thin compatibility shim over the declarative API
//! that replaced it: describe experiments with
//! [`ScenarioSpec`](crate::spec::ScenarioSpec) (and run sweeps through
//! [`SweepRunner`](crate::runner::SweepRunner)) instead of hand-wiring
//! systems through these free functions. Everything here delegates to
//! the same wiring `ScenarioSpec::build` uses, so behaviour (allocation
//! order, seeds, counters) is bit-identical.

#![allow(deprecated)]

use crate::spec::wire;
use a4_core::Harness;
use a4_model::{DeviceId, PortId, Priority, Result, WorkloadId};
use a4_sim::System;
use a4_workloads::RedisRole;

pub use crate::spec::{RunOpts, Scheme, RING_ENTRIES};

/// A fresh scaled Xeon Gold 6140 system.
#[deprecated(note = "describe scenarios with `spec::ScenarioSpec` instead")]
pub fn base_system(opts: &RunOpts) -> System {
    wire::base_system(opts, &crate::spec::SystemTweaks::none())
}

/// Attaches the 100 Gbps NIC with one ring per serving core.
///
/// # Errors
///
/// Propagates attachment failures.
#[deprecated(note = "use `ScenarioSpec::with_nic`")]
pub fn attach_nic(sys: &mut System, rings: usize, packet_bytes: u64) -> Result<DeviceId> {
    wire::attach_nic(sys, 0, PortId(0), rings, packet_bytes, None)
}

/// Attaches the RAID-0 NVMe array.
///
/// # Errors
///
/// Propagates attachment failures.
#[deprecated(note = "use `ScenarioSpec::with_ssd`")]
pub fn attach_ssd(sys: &mut System) -> Result<DeviceId> {
    wire::attach_ssd(sys, 0, PortId(1))
}

/// Block size in scaled lines for a paper block size in KiB.
pub fn block_lines(sys: &System, paper_kib: u64) -> u64 {
    wire::block_lines(sys, paper_kib)
}

/// Working set in scaled lines for a paper size in MiB.
pub fn ws_lines_mib(sys: &System, paper_mib: u64) -> u64 {
    wire::ws_lines_mib(sys, paper_mib)
}

/// Registers a DPDK instance (touching or not) on `cores`.
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::Dpdk` in a `ScenarioSpec`")]
pub fn add_dpdk(
    sys: &mut System,
    nic: DeviceId,
    touch: bool,
    cores: &[u8],
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_dpdk(sys, nic, touch, cores, priority)
}

/// Registers a FIO instance with the paper's I/O depth of 32 per thread.
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::Fio` in a `ScenarioSpec`")]
pub fn add_fio(
    sys: &mut System,
    ssd: DeviceId,
    block_lines: u64,
    cores: &[u8],
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_fio(sys, ssd, block_lines, cores, priority)
}

/// Registers an X-Mem instance (1, 2 or 3 per Table 3).
///
/// # Errors
///
/// Propagates registration failures.
///
/// # Panics
///
/// Panics for instance numbers outside 1–3.
#[deprecated(note = "use `WorkloadSpec::XMem` in a `ScenarioSpec`")]
pub fn add_xmem(
    sys: &mut System,
    instance: u8,
    cores: &[u8],
    priority: Priority,
) -> Result<WorkloadId> {
    assert!(
        (1..=3).contains(&instance),
        "X-Mem instance {instance} does not exist (Table 3 has 1-3)"
    );
    wire::add_xmem(sys, instance, cores, priority)
}

/// Registers a Fastclick instance.
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::Fastclick` in a `ScenarioSpec`")]
pub fn add_fastclick(
    sys: &mut System,
    nic: DeviceId,
    cores: &[u8],
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_fastclick(sys, nic, cores, priority)
}

/// Registers FFSB-H (2 MB blocks, 3 cores in the paper).
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::FfsbHeavy` in a `ScenarioSpec`")]
pub fn add_ffsb_heavy(
    sys: &mut System,
    ssd: DeviceId,
    cores: &[u8],
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_ffsb_heavy(sys, ssd, cores, priority)
}

/// Registers FFSB-L (32 KB blocks, 1 core).
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::FfsbLight` in a `ScenarioSpec`")]
pub fn add_ffsb_light(
    sys: &mut System,
    ssd: DeviceId,
    core: u8,
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_ffsb_light(sys, ssd, core, priority)
}

/// Registers a Redis role (server or client).
///
/// # Errors
///
/// Propagates registration failures.
#[deprecated(note = "use `WorkloadSpec::RedisServer`/`RedisClient` in a `ScenarioSpec`")]
pub fn add_redis(
    sys: &mut System,
    role: RedisRole,
    core: u8,
    priority: Priority,
) -> Result<WorkloadId> {
    wire::add_redis(sys, role, core, priority)
}

/// Registers a SPEC CPU2017-like synthetic by benchmark name.
///
/// # Errors
///
/// Propagates registration failures.
///
/// # Panics
///
/// Panics for unknown benchmark names (a fixed experiment vocabulary).
#[deprecated(note = "use `WorkloadSpec::SpecCpu` in a `ScenarioSpec`")]
pub fn add_spec(sys: &mut System, name: &str, core: u8, priority: Priority) -> Result<WorkloadId> {
    wire::add_spec(sys, name, core, priority)
        .unwrap_or_else(|| panic!("unknown SPEC benchmark {name}"))
}

/// The §7.1 microbenchmark colocation as a ready harness.
///
/// # Panics
///
/// Panics only on programming errors (fixed cores/devices always fit the
/// default configuration).
#[deprecated(note = "use `ScenarioSpec::microbench(opts).build()`")]
pub fn microbench_mix(opts: RunOpts) -> Harness {
    crate::spec::ScenarioSpec::microbench(opts)
        .build()
        .expect("static microbench layout always fits")
        .harness
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shims_match_the_declarative_path() {
        // The deprecated imperative path and ScenarioSpec::build must
        // produce bit-identical runs (same wiring, same allocations).
        let opts = RunOpts::quick();
        let mut shim = microbench_mix(opts);
        let shim_report = shim.run(1, 2);
        let declarative = crate::spec::ScenarioSpec::microbench(opts)
            .build()
            .unwrap()
            .run();
        let mut declarative_h = crate::spec::ScenarioSpec::microbench(opts)
            .build()
            .unwrap()
            .harness;
        let decl_report = declarative_h.run(1, 2);
        assert_eq!(shim_report.samples.len(), decl_report.samples.len());
        for (a, b) in shim_report.samples.iter().zip(&decl_report.samples) {
            for (wa, wb) in a.workloads.iter().zip(&b.workloads) {
                assert_eq!(wa.accesses, wb.accesses);
                assert_eq!(wa.instructions, wb.instructions);
            }
        }
        assert_eq!(declarative.workloads.len(), 5);
    }

    #[test]
    #[should_panic(expected = "X-Mem instance")]
    fn bad_xmem_instance_panics() {
        let mut sys = base_system(&RunOpts::quick());
        let _ = add_xmem(&mut sys, 4, &[0], Priority::Low);
    }
}
