//! Fig. 12: network performance vs storage block size under Default /
//! Isolate / A4 (same §7.1 mix as Fig. 11, packet size fixed at 1514 B).
//!
//! Paper shape: Default and Isolate degrade as blocks grow (Isolate
//! worst); A4 recovers once FIO is detected as an antagonist (~128 KB+),
//! ending 58 % lower latency / 5 % higher throughput at 2 MB.

use crate::fig11::run_mix;
use crate::scenario::{RunOpts, Scheme};
use crate::table::Table;
use a4_sim::LatencyKind;

/// The swept block sizes in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Runs the full figure: per block size, per scheme, DPDK-T tail latency
/// (µs) and network read throughput (GB/s).
pub fn run(opts: &RunOpts) -> Table {
    let mut columns = Vec::new();
    for scheme in Scheme::main_three() {
        columns.push(format!("{}_tl_us", scheme.label()));
        columns.push(format!("{}_rx_gbps", scheme.label()));
    }
    let mut table = Table::new("fig12", "network metrics vs storage block size", columns);
    for kib in BLOCK_KIB {
        let mut row = Vec::new();
        for scheme in Scheme::main_three() {
            let (report, ids) = run_mix(opts, scheme, 1514, kib);
            let tl = report.p99_latency_ns(ids.dpdk, LatencyKind::NetTotal) as f64 / 1000.0;
            let secs = report.samples.len() as f64 * 1e-3;
            let rx = report.total_io_bytes(ids.dpdk) as f64 / secs / 1e9;
            row.push(tl);
            row.push(rx);
        }
        table.push(format!("{kib}KB"), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_core::FeatureLevel;

    #[test]
    fn a4_beats_default_at_large_blocks() {
        let opts = RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        };
        let (default_report, ids_d) = run_mix(&opts, Scheme::Default, 1514, 2048);
        let (a4_report, ids_a) = run_mix(&opts, Scheme::A4(FeatureLevel::D), 1514, 2048);
        let al_default = default_report.mean_latency_ns(ids_d.dpdk, LatencyKind::NetTotal) / 1000.0;
        let al_a4 = a4_report.mean_latency_ns(ids_a.dpdk, LatencyKind::NetTotal) / 1000.0;
        assert!(
            al_a4 < al_default,
            "A4 lowers network latency at 2MB blocks: default={al_default:.1}us a4={al_a4:.1}us"
        );
    }
}
