//! Fig. 12: network performance vs storage block size under Default /
//! Isolate / A4 (same §7.1 mix as Fig. 11, packet size fixed at 1514 B).
//!
//! Paper shape: Default and Isolate degrade as blocks grow (Isolate
//! worst); A4 recovers once FIO is detected as an antagonist (~128 KB+),
//! ending 58 % lower latency / 5 % higher throughput at 2 MB.

use crate::fig11::mix_spec;
use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme};
use crate::table::Table;
use a4_sim::LatencyKind;

/// The swept block sizes in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// The block × scheme grid (block size slowest).
pub fn grid() -> TypedSweep2<u64, Scheme> {
    TypedSweep2::new(
        TypedAxis::new("block_kib", BLOCK_KIB.map(|k| (k, format!("{k}KB")))),
        TypedAxis::new("scheme", Scheme::main_three().map(|s| (s, s.label()))),
    )
}

/// All cells of the figure: block size major, scheme minor (the 10 × 3
/// grid whose cells parallelize independently).
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid().map(|&kib, &scheme| mix_spec(opts, scheme, 1514, kib))
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut columns = Vec::new();
    for scheme in &grid.b.labels {
        columns.push(format!("{scheme}_tl_us"));
        columns.push(format!("{scheme}_rx_gbps"));
    }
    let mut table = Table::new("fig12", "network metrics vs storage block size", columns);
    for (chunk, label) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let mut row = Vec::new();
        for run in chunk {
            row.push(run.p99_latency_us("dpdk", LatencyKind::NetTotal));
            // Paper-comparable GB/s derived from the samples' simulated
            // interval lengths (one logical second = 1 ms on the scaled
            // Xeon) — see RunReport::measured_secs.
            row.push(run.io_gbps("dpdk"));
        }
        table.push(label.clone(), row);
    }
    table
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`: per block
/// size, per scheme, DPDK-T tail latency (µs) and network read
/// throughput (GB/s).
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig12 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig11::run_mix;
    use a4_core::FeatureLevel;

    #[test]
    fn a4_beats_default_at_large_blocks() {
        let opts = RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        };
        let default_run = run_mix(&opts, Scheme::Default, 1514, 2048);
        let a4_run = run_mix(&opts, Scheme::A4(FeatureLevel::D), 1514, 2048);
        let al_default = default_run.mean_latency_us("dpdk", LatencyKind::NetTotal);
        let al_a4 = a4_run.mean_latency_us("dpdk", LatencyKind::NetTotal);
        assert!(
            al_a4 < al_default,
            "A4 lowers network latency at 2MB blocks: default={al_default:.1}us a4={al_a4:.1}us"
        );
    }

    /// Regression guard for the throughput unit bug: the rx_gbps column
    /// must agree with RunReport::io_gbps (interval-derived seconds),
    /// not with a hand-rolled `samples.len()`-based conversion.
    #[test]
    fn rx_gbps_uses_interval_derived_seconds() {
        let opts = RunOpts {
            warmup: 1,
            measure: 2,
            seed: 0xA4,
        };
        let run = run_mix(&opts, Scheme::Default, 1514, 64);
        let id = run.id("dpdk");
        let bytes = run.report.total_io_bytes(id) as f64;
        // Xeon config: 2 measured logical seconds = 2 ms simulated.
        let expected = bytes / 2e-3 / 1e9;
        assert!(bytes > 0.0);
        assert!((run.io_gbps("dpdk") - expected).abs() < 1e-9);
    }
}
