//! Filesystem job queue: sharded [`SweepJob`] tasks handed out to
//! worker processes with atomic claim-by-rename leases.
//!
//! The queue lives under the shared store directory
//! (`<store>/queue/{pending,leases,done,poison,attempts}`) and needs
//! nothing but POSIX rename atomicity:
//!
//! * a **task** is one `(job, shard)` pair, serialized as JSON and named
//!   by its content hash (same salted double-FNV as
//!   [`crate::cache::spec_key`]), so enqueueing is idempotent and a new
//!   code revision never matches a stale `done` marker;
//! * **claiming** renames `pending/<id>.task.json` to
//!   `leases/<id>.<worker>.lease.json` — rename either succeeds for
//!   exactly one claimant or fails for the losers, who move on;
//! * **completing** renames the lease into `done/`; **releasing**
//!   renames it back to `pending/`;
//! * a worker that dies mid-task leaves its lease behind;
//!   [`JobQueue::reclaim_stale`] bounces leases whose mtime stopped
//!   advancing (workers [`Lease::heartbeat`] while executing) back to
//!   `pending/`, and re-execution is harmless because every result
//!   lands in the content-addressed store — already-stored cells load
//!   instead of simulating. The staleness cutoff is clamped to
//!   [`MIN_STALE_AGE`] so coarse-mtime filesystems (1–2 s granularity)
//!   cannot make a live, just-heartbeated lease look abandoned.
//!
//! Every fallible operation returns a typed [`QueueError`] instead of
//! panicking: the queue is driven by unattended `--worker` fleets, and
//! a malformed or truncated task file must never kill a worker. A task
//! that fails to parse on claim is quarantined under `poison/` (see
//! [`JobQueue::poisoned`]) and the claim scan moves on.
//!
//! Each successful claim bumps a best-effort per-task **attempt
//! counter** (`attempts/<id>.count`, surfaced as [`Lease::attempts`]),
//! so the drain loop can tell a first execution from a task that keeps
//! crashing its workers; once the count exceeds the attempt budget the
//! task is [`JobQueue::quarantine_exhausted`] — same `poison/`
//! directory, distinct suffix, distinct tally ([`JobQueue::exhausted`])
//! from parse-poison.
//!
//! All filesystem access goes through the [`Fs`] seam (enforced by the
//! `fs-seam` lint rule), so the crash-consistency property tests
//! drive every rename boundary with a seeded
//! [`crate::fault::FaultFs`] — including half-applied renames at a
//! simulated crash point — and assert that a task is always in exactly
//! one state directory and the queue always drains after recovery.

use crate::cache::content_key;
use crate::fault::{Fs, RealFs};
use crate::service::{Shard, SweepJob};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The smallest staleness cutoff [`JobQueue::reclaim_stale`] honours.
/// Filesystems with coarse mtime granularity (FAT: 2 s; many network
/// filesystems: 1 s) can report a just-heartbeated lease as seconds
/// old; reclaiming under this threshold would bounce *live* leases and
/// duplicate work (harmless for results — the store is idempotent —
/// but a waste and a test-flake source).
pub const MIN_STALE_AGE: Duration = Duration::from_secs(2);

/// Why a queue operation failed.
#[derive(Debug)]
pub enum QueueError {
    /// A filesystem operation failed.
    Io {
        /// What the queue was doing (e.g. `"claim rename"`).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A task failed to serialize or deserialize.
    Serde {
        /// What the queue was doing (e.g. `"serialize task"`).
        op: &'static str,
        /// The serde error, stringified.
        message: String,
    },
}

impl QueueError {
    fn io(op: &'static str, path: impl Into<PathBuf>) -> impl FnOnce(io::Error) -> QueueError {
        let path = path.into();
        move |source| QueueError::Io { op, path, source }
    }
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Io { op, path, source } => {
                write!(f, "queue {op} at {}: {source}", path.display())
            }
            QueueError::Serde { op, message } => write!(f, "queue {op}: {message}"),
        }
    }
}

impl std::error::Error for QueueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueueError::Io { source, .. } => Some(source),
            QueueError::Serde { .. } => None,
        }
    }
}

/// One queue entry: a shard of a sweep job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// The sweep the shard belongs to.
    pub job: SweepJob,
    /// Which slice of the job's work units this task executes.
    pub shard: Shard,
}

impl Task {
    /// The task's content-hash id: a pure function of `(code salt, job,
    /// shard)`, so the same task enqueued twice collapses to one file.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Serde`] if the task fails to serialize
    /// (tasks are plain data, so this indicates a serializer bug — but
    /// a fleet worker must degrade gracefully, not panic).
    pub fn id(&self) -> Result<String, QueueError> {
        let json = serde_json::to_string(self).map_err(|e| QueueError::Serde {
            op: "serialize task",
            message: e.to_string(),
        })?;
        Ok(content_key(&json))
    }
}

/// What [`JobQueue::enqueue`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// The task was written to `pending/`.
    Pending,
    /// An identical task is already waiting.
    AlreadyPending,
    /// An identical task is currently leased to a worker.
    AlreadyLeased,
    /// An identical task already completed.
    AlreadyDone,
}

/// Where a task currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting in `pending/`.
    Pending,
    /// Claimed by a worker.
    Leased,
    /// Completed.
    Done,
    /// Not in the queue at all.
    Unknown,
}

/// A claimed task: proof of ownership until completed, released, or
/// reclaimed as stale.
#[derive(Debug)]
pub struct Lease {
    id: String,
    path: PathBuf,
    fs: Arc<dyn Fs>,
    /// The claimed task.
    pub task: Task,
    /// How many times this task has been claimed, this claim included
    /// (best-effort sidecar counter: a lost write undercounts, which
    /// only delays quarantine, never loses a task). The drain loop
    /// quarantines tasks whose count exceeds its attempt budget — see
    /// [`JobQueue::quarantine_exhausted`].
    pub attempts: u64,
}

impl Lease {
    /// The task's content-hash id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Marks the lease as live (bumps its mtime) so
    /// [`JobQueue::reclaim_stale`] leaves it alone. Call between
    /// batches of work.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (a vanished lease file usually
    /// means the lease was reclaimed).
    pub fn heartbeat(&self) -> Result<(), QueueError> {
        self.fs
            .touch(&self.path)
            .map_err(QueueError::io("heartbeat touch", &self.path))
    }
}

/// A filesystem job queue rooted at `<store>/queue`.
#[derive(Debug, Clone)]
pub struct JobQueue {
    root: PathBuf,
    fs: Arc<dyn Fs>,
}

impl JobQueue {
    /// Opens (creating if necessary) the queue under `store_dir` — the
    /// same directory the [`crate::cache::ResultCache`] uses, so queue
    /// and store travel together.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(store_dir: impl Into<PathBuf>) -> Result<Self, QueueError> {
        Self::open_with_fs(store_dir, Arc::new(RealFs))
    }

    /// [`JobQueue::open`] with filesystem access through `fs` — the
    /// chaos-test entry point (see [`crate::fault::FaultFs`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with_fs(
        store_dir: impl Into<PathBuf>,
        fs: Arc<dyn Fs>,
    ) -> Result<Self, QueueError> {
        let root = store_dir.into().join("queue");
        for sub in ["pending", "leases", "done", "poison", "attempts"] {
            let dir = root.join(sub);
            fs.create_dir_all(&dir)
                .map_err(QueueError::io("create queue dir", &dir))?;
        }
        Ok(JobQueue { root, fs })
    }

    /// The queue's root directory (`<store>/queue`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn pending(&self) -> PathBuf {
        self.root.join("pending")
    }

    fn leases(&self) -> PathBuf {
        self.root.join("leases")
    }

    fn done(&self) -> PathBuf {
        self.root.join("done")
    }

    fn poison(&self) -> PathBuf {
        self.root.join("poison")
    }

    fn attempts_dir(&self) -> PathBuf {
        self.root.join("attempts")
    }

    fn attempts_file(&self, id: &str) -> PathBuf {
        self.attempts_dir().join(format!("{id}.count"))
    }

    fn task_file(id: &str) -> String {
        format!("{id}.task.json")
    }

    /// Increments the task's sidecar attempt counter and returns the
    /// new count (this claim included). Best effort in both directions:
    /// an unreadable or unparseable counter reads as 0, and a failed
    /// write merely undercounts — the task itself is never at risk.
    fn bump_attempts(&self, id: &str) -> u64 {
        let path = self.attempts_file(id);
        let prior = self
            .fs
            .read_to_string(&path)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let next = prior.saturating_add(1);
        self.fs.write(&path, next.to_string().as_bytes()).ok();
        next
    }

    /// Drops the task's attempt counter (best effort), so a later
    /// deliberate re-enqueue starts from attempt 1.
    fn clear_attempts(&self, id: &str) {
        self.fs.remove_file(&self.attempts_file(id)).ok();
    }

    /// Whether any lease file belongs to task `id`.
    fn leased(&self, id: &str) -> bool {
        let prefix = format!("{id}.");
        self.fs
            .read_dir_names(&self.leases())
            .map(|names| names.iter().any(|n| n.starts_with(&prefix)))
            .unwrap_or(false)
    }

    /// Adds `task` to `pending/` unless an identical task is already
    /// pending, leased, or done (enqueueing is idempotent by content
    /// id). The write goes through a temp file + rename so concurrent
    /// enqueuers never leave a torn task.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn enqueue(&self, task: &Task) -> Result<Enqueued, QueueError> {
        let id = task.id()?;
        let file = Self::task_file(&id);
        if self.fs.exists(&self.done().join(&file)) {
            return Ok(Enqueued::AlreadyDone);
        }
        if self.leased(&id) {
            return Ok(Enqueued::AlreadyLeased);
        }
        if self.fs.exists(&self.pending().join(&file)) {
            return Ok(Enqueued::AlreadyPending);
        }
        let json = serde_json::to_string(task).map_err(|e| QueueError::Serde {
            op: "serialize task",
            message: e.to_string(),
        })?;
        let tmp = self
            .pending()
            .join(format!(".{id}.{}.tmp", std::process::id()));
        self.fs
            .write(&tmp, json.as_bytes())
            .map_err(QueueError::io("write task", &tmp))?;
        let target = self.pending().join(&file);
        self.fs
            .rename(&tmp, &target)
            .map_err(QueueError::io("publish task", &target))?;
        Ok(Enqueued::Pending)
    }

    /// Claims one pending task for `worker` (any name without `/` or
    /// `.`): atomically renames the task file into `leases/`, so each
    /// task has at most one owner. Scans in name order; returns
    /// `Ok(None)` when nothing is pending. A task file that does not
    /// parse is quarantined under `poison/` (it could never execute,
    /// and bouncing it back would loop forever) and the scan moves on —
    /// corrupt input degrades one task, never the worker.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than losing a claim race.
    ///
    /// # Panics
    ///
    /// Panics if `worker` contains `/` or `.` (it becomes part of the
    /// lease filename; a bad worker name is a caller bug, not bad data).
    pub fn claim(&self, worker: &str) -> Result<Option<Lease>, QueueError> {
        assert!(
            !worker.contains(['/', '.']),
            "worker name {worker:?} must not contain '/' or '.'"
        );
        let pending_dir = self.pending();
        let mut names: Vec<String> = self
            .fs
            .read_dir_names(&pending_dir)
            .map_err(QueueError::io("scan pending", &pending_dir))?
            .into_iter()
            .filter(|n| n.ends_with(".task.json"))
            .collect();
        names.sort();
        for name in names {
            let id = name.trim_end_matches(".task.json").to_string();
            let lease_path = self.leases().join(format!("{id}.{worker}.lease.json"));
            // The atomic claim: exactly one concurrent renamer wins.
            if self
                .fs
                .rename(&pending_dir.join(&name), &lease_path)
                .is_err()
            {
                continue;
            }
            let json = self
                .fs
                .read_to_string(&lease_path)
                .map_err(QueueError::io("read claimed task", &lease_path))?;
            match serde_json::from_str::<Task>(&json) {
                Ok(task) => {
                    let attempts = self.bump_attempts(&id);
                    return Ok(Some(Lease {
                        id,
                        path: lease_path,
                        fs: Arc::clone(&self.fs),
                        task,
                        attempts,
                    }));
                }
                Err(_) => {
                    // Poison task: quarantine it (keeping the evidence
                    // for a post-mortem) and keep scanning.
                    let grave = self.poison().join(&name);
                    self.fs
                        .rename(&lease_path, &grave)
                        .map_err(QueueError::io("quarantine poison task", &grave))?;
                }
            }
        }
        Ok(None)
    }

    /// Marks a claimed task as completed (lease renamed into `done/`).
    /// Tolerates a lease that was reclaimed and completed by another
    /// worker in the meantime — completion is idempotent.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn complete(&self, lease: Lease) -> Result<(), QueueError> {
        self.try_complete(&lease)
    }

    /// [`JobQueue::complete`] without consuming the lease, so callers
    /// with a retry budget (the worker drain loop) can re-attempt a
    /// transiently failed completion — the rename is idempotent.
    pub(crate) fn try_complete(&self, lease: &Lease) -> Result<(), QueueError> {
        let target = self.done().join(Self::task_file(&lease.id));
        let result = match self.fs.rename(&lease.path, &target) {
            Ok(()) => Ok(()),
            // Our lease vanished (stale-reclaimed); fine if the task
            // still reached `done/` through its other owner.
            Err(e) if e.kind() == io::ErrorKind::NotFound && self.fs.exists(&target) => Ok(()),
            Err(e) => Err(QueueError::io("complete task", &target)(e)),
        };
        if result.is_ok() {
            self.clear_attempts(&lease.id);
        }
        result
    }

    /// Returns a claimed task to `pending/` unexecuted (a worker
    /// shutting down gracefully).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn release(&self, lease: Lease) -> Result<(), QueueError> {
        self.try_release(&lease)
    }

    /// [`JobQueue::release`] without consuming the lease (see
    /// [`JobQueue::try_complete`]). A release that finds the task
    /// already back in `pending/` (a racing stale-reclaim beat us to
    /// it) is a success: the task survived, which is all release
    /// promises.
    pub(crate) fn try_release(&self, lease: &Lease) -> Result<(), QueueError> {
        let target = self.pending().join(Self::task_file(&lease.id));
        match self.fs.rename(&lease.path, &target) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound && self.fs.exists(&target) => Ok(()),
            Err(e) => Err(QueueError::io("release task", &target)(e)),
        }
    }

    /// Takes a repeatedly failing task out of circulation: the lease is
    /// renamed to `poison/<id>.task.quarantined.json` — a suffix
    /// distinct from the `.task.json` parse-poison graves, so
    /// [`JobQueue::poisoned`] and [`JobQueue::exhausted`] tally the two
    /// failure classes separately — and its attempt counter is cleared,
    /// so a deliberate later re-enqueue starts fresh from attempt 1.
    /// Idempotent like completion: a lease that vanished while the
    /// grave exists is a success.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn quarantine_exhausted(&self, lease: Lease) -> Result<(), QueueError> {
        self.try_quarantine_exhausted(&lease)
    }

    /// [`JobQueue::quarantine_exhausted`] without consuming the lease
    /// (see [`JobQueue::try_complete`]), so the drain loop can retry a
    /// transiently failed quarantine.
    pub(crate) fn try_quarantine_exhausted(&self, lease: &Lease) -> Result<(), QueueError> {
        let target = self
            .poison()
            .join(format!("{}.task.quarantined.json", lease.id));
        let result = match self.fs.rename(&lease.path, &target) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound && self.fs.exists(&target) => Ok(()),
            Err(e) => Err(QueueError::io("quarantine exhausted task", &target)(e)),
        };
        if result.is_ok() {
            self.clear_attempts(&lease.id);
        }
        result
    }

    /// Bounces every lease older than `max_age` (by mtime — live
    /// workers heartbeat) back to `pending/` for another worker to
    /// claim; `max_age` is clamped to at least [`MIN_STALE_AGE`] so
    /// coarse-mtime filesystems cannot fake staleness. Returns how many
    /// were reclaimed.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures.
    pub fn reclaim_stale(&self, max_age: Duration) -> Result<usize, QueueError> {
        let max_age = max_age.max(MIN_STALE_AGE);
        let now = std::time::SystemTime::now();
        let leases_dir = self.leases();
        let mut reclaimed = 0;
        for name in self
            .fs
            .read_dir_names(&leases_dir)
            .map_err(QueueError::io("scan leases", &leases_dir))?
        {
            let Some((id, _)) = name.split_once('.') else {
                continue;
            };
            let path = leases_dir.join(&name);
            let Ok(modified) = self.fs.modified(&path) else {
                continue;
            };
            let age = now.duration_since(modified).unwrap_or_default();
            if age >= max_age
                && self
                    .fs
                    .rename(&path, &self.pending().join(Self::task_file(id)))
                    .is_ok()
            {
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// Where task `id` currently sits.
    pub fn state(&self, id: &str) -> TaskState {
        let file = Self::task_file(id);
        if self.fs.exists(&self.done().join(&file)) {
            TaskState::Done
        } else if self.leased(id) {
            TaskState::Leased
        } else if self.fs.exists(&self.pending().join(&file)) {
            TaskState::Pending
        } else {
            TaskState::Unknown
        }
    }

    /// `(pending, leased, done)` task counts.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures.
    pub fn counts(&self) -> Result<(usize, usize, usize), QueueError> {
        Ok((
            self.count_dir(self.pending(), ".task.json")?,
            self.count_dir(self.leases(), ".lease.json")?,
            self.count_dir(self.done(), ".task.json")?,
        ))
    }

    /// How many unparseable tasks [`JobQueue::claim`] has quarantined.
    /// Non-zero means someone enqueued garbage (or a task file was
    /// torn by a non-atomic copy into the store) — worth a look, never
    /// worth a dead worker.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures.
    pub fn poisoned(&self) -> Result<usize, QueueError> {
        // Parse-poison graves keep their `.task.json` name; exhausted
        // quarantines use `.task.quarantined.json`, which this suffix
        // match does not capture — the tallies stay disjoint.
        self.count_dir(self.poison(), ".task.json")
    }

    /// How many repeatedly failing tasks were quarantined after
    /// exhausting their attempt budget ([`JobQueue::quarantine_exhausted`]).
    /// Counted separately from parse-poison ([`JobQueue::poisoned`]):
    /// these tasks were well-formed but kept failing to *execute*.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures.
    pub fn exhausted(&self) -> Result<usize, QueueError> {
        self.count_dir(self.poison(), ".task.quarantined.json")
    }

    fn count_dir(&self, dir: PathBuf, suffix: &str) -> Result<usize, QueueError> {
        Ok(self
            .fs
            .read_dir_names(&dir)
            .map_err(QueueError::io("scan queue dir", &dir))?
            .iter()
            .filter(|n| n.ends_with(suffix))
            .count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SeedPolicy;
    use crate::spec::RunOpts;
    use std::time::SystemTime;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a4-queue-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn task(shard_index: u64) -> Task {
        Task {
            job: SweepJob::new("fig4", RunOpts::quick(), 1, SeedPolicy::SpecSeed).unwrap(),
            shard: Shard::new(shard_index, 2),
        }
    }

    /// Fakes a dead worker: rewinds the lease's mtime well past any
    /// staleness cutoff (including the [`MIN_STALE_AGE`] clamp).
    fn backdate_lease(store: &Path, id: &str, worker: &str) {
        let path = store
            .join("queue/leases")
            .join(format!("{id}.{worker}.lease.json"));
        std::fs::File::options()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(SystemTime::now() - Duration::from_secs(3600))
            .unwrap();
    }

    #[test]
    fn lifecycle_pending_leased_done() {
        let dir = tmp_store("lifecycle");
        let queue = JobQueue::open(&dir).unwrap();
        let t = task(0);
        let id = t.id().unwrap();

        assert_eq!(queue.state(&id), TaskState::Unknown);
        assert_eq!(queue.enqueue(&t).unwrap(), Enqueued::Pending);
        assert_eq!(queue.enqueue(&t).unwrap(), Enqueued::AlreadyPending);
        assert_eq!(queue.state(&id), TaskState::Pending);

        let lease = queue.claim("w1").unwrap().expect("one pending task");
        assert_eq!(lease.id(), id);
        assert_eq!(lease.task, t);
        assert_eq!(queue.state(&id), TaskState::Leased);
        assert_eq!(queue.enqueue(&t).unwrap(), Enqueued::AlreadyLeased);
        assert!(queue.claim("w2").unwrap().is_none(), "no double claim");
        lease.heartbeat().unwrap();

        queue.complete(lease).unwrap();
        assert_eq!(queue.state(&id), TaskState::Done);
        assert_eq!(queue.enqueue(&t).unwrap(), Enqueued::AlreadyDone);
        assert_eq!(queue.counts().unwrap(), (0, 0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_shards_are_distinct_tasks() {
        let dir = tmp_store("shards");
        let queue = JobQueue::open(&dir).unwrap();
        assert_ne!(task(0).id().unwrap(), task(1).id().unwrap());
        queue.enqueue(&task(0)).unwrap();
        queue.enqueue(&task(1)).unwrap();
        assert_eq!(queue.counts().unwrap(), (2, 0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_leases_reclaim_and_release_requeues() {
        let dir = tmp_store("stale");
        let queue = JobQueue::open(&dir).unwrap();
        let t = task(0);
        let id = t.id().unwrap();
        queue.enqueue(&t).unwrap();

        // Graceful release puts the task back.
        let lease = queue.claim("w1").unwrap().unwrap();
        queue.release(lease).unwrap();
        assert_eq!(queue.state(&id), TaskState::Pending);

        // A dead worker's lease (no heartbeats, mtime an hour old) is
        // reclaimed...
        let _abandoned = queue.claim("w1").unwrap().unwrap();
        backdate_lease(&dir, &id, "w1");
        assert_eq!(queue.reclaim_stale(Duration::ZERO).unwrap(), 1);
        assert_eq!(queue.state(&id), TaskState::Pending);

        // ...and another worker finishes it; the zombie's `complete`
        // with its vanished lease is tolerated.
        let second = queue.claim("w2").unwrap().unwrap();
        let zombie = Lease {
            id: second.id.clone(),
            path: dir.join("queue/leases").join(format!("{id}.w1.lease.json")),
            fs: Arc::new(RealFs),
            task: second.task.clone(),
            attempts: 1,
        };
        queue.complete(second).unwrap();
        queue.complete(zombie).unwrap();
        assert_eq!(queue.state(&id), TaskState::Done);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_leases_survive_reclaim() {
        let dir = tmp_store("fresh");
        let queue = JobQueue::open(&dir).unwrap();
        queue.enqueue(&task(0)).unwrap();
        let lease = queue.claim("w1").unwrap().unwrap();
        lease.heartbeat().unwrap();
        assert_eq!(
            queue.reclaim_stale(Duration::from_secs(3600)).unwrap(),
            0,
            "heartbeating lease is not stale"
        );
        // The coarse-mtime guard: even a zero cutoff cannot reclaim a
        // lease younger than MIN_STALE_AGE.
        assert_eq!(
            queue.reclaim_stale(Duration::ZERO).unwrap(),
            0,
            "zero cutoff clamps to MIN_STALE_AGE"
        );
        queue.complete(lease).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attempts_count_up_and_exhaustion_quarantines() {
        let dir = tmp_store("attempts");
        let queue = JobQueue::open(&dir).unwrap();
        let t = task(0);
        let id = t.id().unwrap();
        queue.enqueue(&t).unwrap();

        // Each claim-release cycle (a failing execution) counts.
        let lease = queue.claim("w1").unwrap().unwrap();
        assert_eq!(lease.attempts, 1);
        queue.release(lease).unwrap();
        let lease = queue.claim("w1").unwrap().unwrap();
        assert_eq!(lease.attempts, 2);
        queue.release(lease).unwrap();

        // The third failure exhausts a budget of 2: quarantined out of
        // circulation, tallied apart from parse-poison.
        let lease = queue.claim("w1").unwrap().unwrap();
        assert_eq!(lease.attempts, 3);
        queue.quarantine_exhausted(lease).unwrap();
        assert_eq!(queue.state(&id), TaskState::Unknown);
        assert!(queue.claim("w1").unwrap().is_none(), "out of circulation");
        assert_eq!(queue.exhausted().unwrap(), 1);
        assert_eq!(queue.poisoned().unwrap(), 0, "not a parse-poison");
        assert!(
            dir.join("queue/poison")
                .join(format!("{id}.task.quarantined.json"))
                .exists(),
            "evidence preserved"
        );

        // A deliberate re-enqueue starts from attempt 1 (counter
        // cleared on quarantine).
        assert_eq!(queue.enqueue(&t).unwrap(), Enqueued::Pending);
        let lease = queue.claim("w1").unwrap().unwrap();
        assert_eq!(lease.attempts, 1);
        // Completion clears the counter too: a later re-run of the
        // same content id is a fresh first attempt.
        queue.complete(lease).unwrap();
        assert!(!dir
            .join("queue/attempts")
            .join(format!("{id}.count"))
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_tasks_are_poisoned_and_the_queue_drains() {
        let dir = tmp_store("poison");
        let queue = JobQueue::open(&dir).unwrap();
        let t = task(0);
        queue.enqueue(&t).unwrap();

        // Two corrupt task files whose names sort before any hex id, so
        // the claim scan must survive them *before* reaching the good
        // task: one malformed, one truncated-to-empty.
        let pending = dir.join("queue/pending");
        std::fs::write(pending.join("!garbage.task.json"), "{ not json").unwrap();
        std::fs::write(pending.join("!truncated.task.json"), "").unwrap();
        assert_eq!(queue.counts().unwrap().0, 3);

        // The worker drains the queue: corrupt tasks quarantined, the
        // good one claimed and completed, no panic anywhere.
        let lease = queue.claim("w1").unwrap().expect("good task claimable");
        assert_eq!(lease.task, t);
        queue.complete(lease).unwrap();
        assert!(queue.claim("w1").unwrap().is_none(), "queue drained");

        assert_eq!(queue.counts().unwrap(), (0, 0, 1));
        assert_eq!(queue.poisoned().unwrap(), 2, "corrupt tasks quarantined");
        assert_eq!(
            queue.state(&t.id().unwrap()),
            TaskState::Done,
            "good task unaffected by poison neighbours"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
