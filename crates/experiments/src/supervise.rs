//! Supervised cell execution: periodic checkpoints and a runaway-cell
//! watchdog on top of [`a4_core::Harness::run_supervised`].
//!
//! A long sweep loses work two ways: the *process* dies (OOM kill,
//! preemption, ctrl-C) mid-cell, or one *cell* runs away (a pathological
//! parameter mix that never converges) and starves the rest. This module
//! addresses both:
//!
//! * a [`CkptStore`] persists a [`CellCkpt`] — the complete simulation
//!   state of one in-flight cell — under the cell's `spec_key`, so a
//!   restarted worker resumes the cell from its last checkpoint instead
//!   of from quantum 0, and the resumed run is **bit-identical** to an
//!   uninterrupted one (the simulator is deterministic and
//!   [`a4_sim::System::restore_state`] is exact);
//! * a [`CellSupervisor`] watches quantum consumption after every
//!   logical second and aborts the cell with a typed watchdog error once
//!   a configured budget is exhausted, so one runaway cell becomes a
//!   recorded [`crate::runner::CellFailure`] instead of a hung sweep.
//!
//! # Integrity and failure model
//!
//! Checkpoints follow the [`crate::cache`] store discipline: entries are
//! checksummed envelopes `{"payload_fnv": <`content key` of the ckpt
//! JSON>, "ckpt": <ckpt>}` written via temp-file + atomic rename through
//! the [`Fs`] seam, with [`Backoff::fabric`] retries per filesystem
//! step. A checkpoint is an *optimization*, never truth: a missing,
//! torn, bit-flipped, version-skewed or key-mismatched entry is treated
//! as **stale** — removed (best effort), counted, and the cell restarts
//! from quantum 0. Bad state is never served. Save failures likewise
//! degrade to "no checkpoint" visibly (counted, warned once per
//! process); the cell still completes.

use crate::cache::content_key;
use crate::fault::{Backoff, Fs, RealFs};
use a4_core::{LlcPolicy, PolicyState, RunSupervisor, SupervisorCtx};
use a4_sim::{MonitorSample, SystemState};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Current [`CellCkpt::version`]. Bump whenever the checkpoint layout
/// changes — old checkpoints are then ignored as stale (the cell
/// restarts from quantum 0), never misinterpreted.
pub const CELL_CKPT_VERSION: u32 = 1;

/// The complete resumable state of one in-flight experiment cell,
/// snapshotted at a logical-second boundary.
///
/// Restoring `system` + `policy` into a freshly built scenario of the
/// same spec and continuing for the remaining seconds reproduces the
/// uninterrupted run bit for bit; `samples` carries the measurement
/// samples already recorded so the final report is whole.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellCkpt {
    /// Layout version ([`CELL_CKPT_VERSION`]).
    pub version: u32,
    /// The [`crate::cache::spec_key`] of the cell this state belongs
    /// to — a checkpoint is only ever restored into its own spec.
    pub spec_key: String,
    /// Logical seconds already completed (the resume point).
    pub seconds_done: u64,
    /// Measurement samples recorded so far (warm-up samples are
    /// discarded by the harness and never checkpointed).
    pub samples: Vec<MonitorSample>,
    /// The full simulation state ([`a4_sim::System::save_state`]).
    pub system: SystemState,
    /// The LLC policy's mutable state.
    pub policy: PolicyState,
}

/// The envelope persisted on disk: the checkpoint wrapped with its own
/// checksum, mirroring the [`crate::cache::ResultCache`] entry format.
#[derive(Debug, Deserialize)]
struct StoredCkpt {
    /// [`content_key`] of the serialized `ckpt` field.
    payload_fnv: String,
    /// The checkpoint itself.
    ckpt: CellCkpt,
}

/// An on-disk store of [`CellCkpt`]s keyed by spec key, conventionally
/// rooted at `<store>/ckpt/`.
///
/// # Examples
///
/// ```
/// use a4_experiments::supervise::CkptStore;
///
/// let dir = std::env::temp_dir().join("a4-ckpt-doc-test");
/// let store = CkptStore::new(&dir);
/// assert!(store.load("no-such-key").is_none(), "cold store");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
    fs: Arc<dyn Fs>,
    // Shared across clones (sweep threads clone the runner), so a whole
    // sweep reports one tally per counter.
    saved: Arc<AtomicU64>,
    resumed: Arc<AtomicU64>,
    stale: Arc<AtomicU64>,
    write_failures: Arc<AtomicU64>,
    warned: Arc<AtomicBool>,
}

/// Distinguishes concurrent `save` calls within one process, so each
/// writer owns a unique temp file.
static CKPT_SEQ: AtomicU64 = AtomicU64::new(0);

impl CkptStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CkptStore::with_fs(dir, Arc::new(RealFs))
    }

    /// A store rooted at `dir` whose filesystem access goes through
    /// `fs` — the chaos-test entry point (see [`crate::fault::FaultFs`]).
    pub fn with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn Fs>) -> Self {
        CkptStore {
            dir: dir.into(),
            fs,
            saved: Arc::new(AtomicU64::new(0)),
            resumed: Arc::new(AtomicU64::new(0)),
            stale: Arc::new(AtomicU64::new(0)),
            write_failures: Arc::new(AtomicU64::new(0)),
            warned: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints written since construction (shared across clones).
    pub fn saved(&self) -> u64 {
        self.saved.load(Ordering::Relaxed)
    }

    /// Cells resumed from a valid checkpoint since construction.
    pub fn resumed(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    /// Checkpoints ignored as stale (torn, checksum-mismatched,
    /// version-skewed, key-mismatched, or unrestorable) — each one
    /// restarted its cell from quantum 0.
    pub fn stale(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Checkpoint writes that failed after retries — each one degraded
    /// that save to "no checkpoint", visibly.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.ckpt.json"))
    }

    /// Persists `ckpt` under its spec key (best effort: a full disk or
    /// missing permissions degrade to "no checkpoint", never to a
    /// failed cell — but *counted* degradation). The write goes to a
    /// per-writer temp file first and is moved into place atomically;
    /// each filesystem step retries with [`Backoff::fabric`] on its own.
    pub fn save(&self, ckpt: &CellCkpt) {
        let json = match serde_json::to_string(ckpt) {
            Ok(json) => json,
            Err(_) => return,
        };
        let envelope = format!(
            "{{\"payload_fnv\":\"{}\",\"ckpt\":{json}}}",
            content_key(&json)
        );
        let seq = CKPT_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".{}.{}.{seq}.tmp",
            ckpt.spec_key,
            std::process::id()
        ));
        let mut retries = 0;
        let backoff = Backoff::fabric();
        let result = backoff
            .retry(&mut retries, || {
                self.fs
                    .create_dir_all(&self.dir)
                    .and_then(|()| self.fs.write(&tmp, envelope.as_bytes()))
            })
            .and_then(|()| {
                backoff.retry(&mut retries, || {
                    self.fs.rename(&tmp, &self.path_of(&ckpt.spec_key))
                })
            });
        match result {
            Ok(()) => {
                self.saved.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.fs.remove_file(&tmp).ok();
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                if !self.warned.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "[a4-ckpt] warning: checkpoint write failed ({e}); the cell \
                         continues unprotected (reported once per process)"
                    );
                }
            }
        }
    }

    /// Loads the checkpoint stored under `key`, if one exists and is
    /// intact. A present-but-bad entry (unparseable, checksum mismatch,
    /// version skew, key mismatch) is **stale**: removed (best effort),
    /// counted, and `None` — the cell restarts from quantum 0; bad
    /// state is never served.
    pub fn load(&self, key: &str) -> Option<CellCkpt> {
        let path = self.path_of(key);
        let json = self.fs.read_to_string(&path).ok()?;
        let intact = (|| {
            let entry: StoredCkpt = serde_json::from_str(&json).ok()?;
            let payload = serde_json::to_string(&entry.ckpt).ok()?;
            (content_key(&payload) == entry.payload_fnv
                && entry.ckpt.version == CELL_CKPT_VERSION
                && entry.ckpt.spec_key == key)
                .then_some(entry.ckpt)
        })();
        match intact {
            Some(ckpt) => Some(ckpt),
            None => {
                self.discard(key);
                None
            }
        }
    }

    /// Marks the entry under `key` stale: counts it and removes the
    /// file (best effort). Also the hook for a caller whose *restore*
    /// failed after a structurally intact load.
    pub fn discard(&self, key: &str) {
        self.stale.fetch_add(1, Ordering::Relaxed);
        self.fs.remove_file(&self.path_of(key)).ok();
        eprintln!("[a4-ckpt] warning: checkpoint {key} is stale; restarting the cell from scratch");
    }

    /// Counts one successful resume (called by the runner after the
    /// restore round-trip succeeds).
    pub fn note_resumed(&self) {
        self.resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes the checkpoint of a completed cell (best effort — a
    /// leftover entry is ignored as out-of-date on the next run anyway,
    /// because the result cache is consulted first).
    pub fn remove(&self, key: &str) {
        self.fs.remove_file(&self.path_of(key)).ok();
    }
}

/// The per-cell [`RunSupervisor`]: checkpoints every `ckpt_every` quanta
/// and aborts the run once `budget` quanta are consumed.
///
/// Both knobs are optional — `ckpt_every == 0` disables checkpointing,
/// `budget == None` disables the watchdog — so the same supervised code
/// path serves plain runs bit-identically.
#[derive(Debug)]
pub struct CellSupervisor<'a> {
    store: Option<&'a CkptStore>,
    key: String,
    ckpt_every: u64,
    next_ckpt: u64,
    budget: Option<u64>,
    tripped: Option<(u64, u64)>,
}

impl<'a> CellSupervisor<'a> {
    /// A supervisor for the cell keyed `key`, starting from
    /// `start_quanta` already-consumed quanta (0 for a fresh run, the
    /// restored [`a4_sim::System::quantum_count`] on resume).
    pub fn new(
        store: Option<&'a CkptStore>,
        key: impl Into<String>,
        ckpt_every: u64,
        budget: Option<u64>,
        start_quanta: u64,
    ) -> Self {
        CellSupervisor {
            store,
            key: key.into(),
            ckpt_every,
            next_ckpt: start_quanta.saturating_add(ckpt_every),
            budget,
            tripped: None,
        }
    }

    /// `(consumed, budget)` if the watchdog aborted the run.
    pub fn tripped(&self) -> Option<(u64, u64)> {
        self.tripped
    }
}

impl RunSupervisor for CellSupervisor<'_> {
    fn after_second(&mut self, ctx: SupervisorCtx<'_>) -> Result<(), String> {
        let quanta = ctx.system.quantum_count();
        if let Some(budget) = self.budget {
            if quanta > budget {
                self.tripped = Some((quanta, budget));
                return Err(format!(
                    "quantum budget exhausted after {} s: {quanta} quanta consumed, budget {budget}",
                    ctx.second
                ));
            }
        }
        if self.ckpt_every > 0 && quanta >= self.next_ckpt {
            if let Some(store) = self.store {
                store.save(&CellCkpt {
                    version: CELL_CKPT_VERSION,
                    spec_key: self.key.clone(),
                    seconds_done: ctx.second,
                    samples: ctx.samples.to_vec(),
                    system: ctx.system.save_state(),
                    policy: ctx
                        .policy
                        .map_or(PolicyState::Stateless, LlcPolicy::save_ckpt),
                });
            }
            while self.next_ckpt <= quanta {
                self.next_ckpt = self.next_ckpt.saturating_add(self.ckpt_every);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RunOpts, ScenarioSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("a4-ckpt-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn quick_ckpt(key: &str) -> CellCkpt {
        let scenario = ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        })
        .build()
        .unwrap();
        CellCkpt {
            version: CELL_CKPT_VERSION,
            spec_key: key.to_string(),
            seconds_done: 1,
            samples: Vec::new(),
            system: scenario.harness.system().save_state(),
            policy: PolicyState::Stateless,
        }
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let store = CkptStore::new(&dir);
        let key = "a".repeat(32);
        assert!(store.load(&key).is_none(), "cold store");
        store.save(&quick_ckpt(&key));
        assert_eq!(store.saved(), 1);
        let back = store.load(&key).expect("saved checkpoint loads");
        assert_eq!(back.seconds_done, 1);
        assert_eq!(back.spec_key, key);
        assert_eq!(store.stale(), 0);
        assert_eq!(store.write_failures(), 0);
        store.remove(&key);
        assert!(store.load(&key).is_none(), "removed after completion");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entries_are_stale_not_served() {
        let dir = tmp_dir("truncated");
        let store = CkptStore::new(&dir);
        let key = "b".repeat(32);
        store.save(&quick_ckpt(&key));
        // Truncate the entry as a torn write promoted by a buggy tool
        // would leave it.
        let path = dir.join(format!("{key}.ckpt.json"));
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.load(&key).is_none(), "never served");
        assert_eq!(store.stale(), 1);
        assert!(!path.exists(), "stale entry removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_entries_are_stale_not_served() {
        let dir = tmp_dir("bitflip");
        let store = CkptStore::new(&dir);
        let key = "c".repeat(32);
        store.save(&quick_ckpt(&key));
        let path = dir.join(format!("{key}.ckpt.json"));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the payload (past the envelope prefix) so
        // the file still parses but the checksum no longer covers it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = store.load(&key);
        // Either the flip broke the JSON (unparseable → stale) or it
        // parsed with a mismatched checksum (→ stale); both must miss.
        assert!(loaded.is_none(), "never served");
        assert_eq!(store.stale(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_and_key_mismatch_are_stale() {
        let dir = tmp_dir("skew");
        let store = CkptStore::new(&dir);
        let key = "d".repeat(32);
        let mut ckpt = quick_ckpt(&key);
        ckpt.version = CELL_CKPT_VERSION + 1;
        store.save(&ckpt);
        assert!(store.load(&key).is_none(), "future version is stale");
        assert_eq!(store.stale(), 1);

        let other = "e".repeat(32);
        let mut ckpt = quick_ckpt(&key);
        ckpt.spec_key.clone_from(&other);
        store.save(&ckpt); // stored under `other`...
                           // ...then renamed over `key`'s slot, as a corrupted store could.
        std::fs::rename(
            dir.join(format!("{other}.ckpt.json")),
            dir.join(format!("{key}.ckpt.json")),
        )
        .unwrap();
        assert!(store.load(&key).is_none(), "foreign key is stale");
        assert_eq!(store.stale(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_save_degrades_without_panicking() {
        use crate::fault::{FaultFs, FaultPlan};
        let dir = tmp_dir("chaos");
        let fs = Arc::new(FaultFs::new(FaultPlan::chaos(0xA4C4)));
        let store = CkptStore::with_fs(&dir, fs);
        let key = "f".repeat(32);
        for _ in 0..8 {
            store.save(&quick_ckpt(&key));
        }
        // Under the bounded chaos plan every save eventually lands
        // (max_consecutive faults < the fabric retry budget).
        assert_eq!(store.saved(), 8);
        assert_eq!(store.write_failures(), 0);
        assert!(store.load(&key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
