//! Fig. 15: sensitivity of A4 to its thresholds and timing parameters,
//! on the HPW-heavy mix, reported as average relative performance
//! (HP / LP / all) normalized to the Default model.
//!
//! * 15a — partitioning thresholds T1 × T5;
//! * 15b — antagonist-detection thresholds T2/T3/T4;
//! * 15c — stable interval 1/5/10/20 s vs an oracle that never reverts.

use crate::fig13::mix_spec;
use crate::runner::SweepRunner;
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme};
use crate::table::Table;
use a4_core::{FeatureLevel, Thresholds};
use a4_model::Priority;

/// The HPW-heavy mix under full A4 with custom thresholds, as one cell.
pub fn spec(opts: &RunOpts, thresholds: Thresholds) -> ScenarioSpec {
    mix_spec(opts, Scheme::A4(FeatureLevel::D), true).with_thresholds(thresholds)
}

/// The shared Default-model baseline cell.
pub fn baseline_spec(opts: &RunOpts) -> ScenarioSpec {
    mix_spec(opts, Scheme::Default, true)
}

/// `(avg_hp, avg_lp, avg_all)` of `a4` relative to `baseline`.
fn relative(baseline: &ScenarioRun, a4: &ScenarioRun) -> (f64, f64, f64) {
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for binding in &baseline.workloads {
        let rel = a4.perf(&binding.role) / baseline.perf(&binding.role).max(1e-12);
        let bucket = if binding.priority == Priority::High {
            0
        } else {
            1
        };
        sums[bucket] += rel;
        counts[bucket] += 1;
        sums[2] += rel;
        counts[2] += 1;
    }
    (
        sums[0] / counts[0] as f64,
        sums[1] / counts[1] as f64,
        sums[2] / counts[2] as f64,
    )
}

/// Runs the HPW-heavy mix under full A4 with custom thresholds; returns
/// `(avg_hp, avg_lp, avg_all)` relative to the Default model.
pub fn run_point(opts: &RunOpts, thresholds: Thresholds) -> (f64, f64, f64) {
    let baseline = baseline_spec(opts)
        .build()
        .expect("static fig15 layout")
        .run();
    let a4 = spec(opts, thresholds)
        .build()
        .expect("static fig15 layout")
        .run();
    relative(&baseline, &a4)
}

/// The T1 × T5 grid of Fig. 15a as `(label, thresholds)` pairs.
pub fn points_a() -> Vec<(String, Thresholds)> {
    let base = Thresholds::scaled_sim();
    let mut points = Vec::new();
    for t1 in [0.10, 0.20, 0.30] {
        for t5 in [0.80, 0.60, 0.45] {
            points.push((
                format!("T1={t1:.2} T5={t5:.2}"),
                Thresholds {
                    hpw_llc_hit_thr: t1,
                    ant_cache_miss_thr: t5,
                    ..base
                },
            ));
        }
    }
    points
}

/// The T2/T3/T4 combinations of Fig. 15b.
pub fn points_b() -> Vec<(String, Thresholds)> {
    let base = Thresholds::scaled_sim();
    [
        (0.40, 0.35, 0.40),
        (0.65, 0.35, 0.40),
        (0.40, 0.65, 0.40),
        (0.40, 0.35, 0.80),
        (0.90, 0.90, 0.95),
    ]
    .into_iter()
    .map(|(t2, t3, t4)| {
        (
            format!("T2={t2:.2} T3={t3:.2} T4={t4:.2}"),
            Thresholds {
                dmalk_dca_ms_thr: t2,
                dmalk_io_tp_thr: t3,
                dmalk_llc_ms_thr: t4,
                ..base
            },
        )
    })
    .collect()
}

/// The stable-interval sweep of Fig. 15c (`oracle` never reverts).
pub fn points_c() -> Vec<(String, Thresholds)> {
    let base = Thresholds::scaled_sim();
    [
        ("1s", 1),
        ("5s", 5),
        ("10s", 10),
        ("20s", 20),
        ("oracle", u64::MAX / 2),
    ]
    .into_iter()
    .map(|(label, interval)| {
        (
            label.to_string(),
            Thresholds {
                stable_interval: interval,
                ..base
            },
        )
    })
    .collect()
}

/// All cells of one panel: the shared baseline first, then one A4 cell
/// per threshold point.
pub fn panel_specs(opts: &RunOpts, points: &[(String, Thresholds)]) -> Vec<ScenarioSpec> {
    let mut specs = vec![baseline_spec(opts)];
    specs.extend(points.iter().map(|(_, t)| spec(opts, *t)));
    specs
}

/// Every distinct cell of the figure: the Default baseline once, then
/// the three panels' threshold points (the baseline is shared across
/// panels, so it is not repeated).
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    let mut specs = vec![baseline_spec(opts)];
    for points in [points_a(), points_b(), points_c()] {
        specs.extend(points.iter().map(|(_, t)| spec(opts, *t)));
    }
    specs
}

fn panel_table(
    id: &str,
    title: &str,
    points: &[(String, Thresholds)],
    baseline: &ScenarioRun,
    runs: &[ScenarioRun],
) -> Table {
    let mut table = Table::new(id, title, ["avg_hp", "avg_lp", "avg_all"]);
    for ((label, _), a4) in points.iter().zip(runs) {
        let (hp, lp, all) = relative(baseline, a4);
        table.push(label.clone(), [hp, lp, all]);
    }
    table
}

fn run_panel(
    opts: &RunOpts,
    runner: &SweepRunner,
    id: &str,
    title: &str,
    points: &[(String, Thresholds)],
) -> Table {
    let runs = runner
        .run_specs(&panel_specs(opts, points))
        .expect("static fig15 layout");
    panel_table(id, title, points, &runs[0], &runs[1..])
}

/// Runs all three panels sharing one Default baseline simulation (the
/// cells of [`specs`], exactly once each); returns
/// `[fig15a, fig15b, fig15c]`.
pub fn run_all_with(opts: &RunOpts, runner: &SweepRunner) -> Vec<Table> {
    let runs = runner.run_specs(&specs(opts)).expect("static fig15 layout");
    tables(&runs)
}

/// Renders `[fig15a, fig15b, fig15c]` from the runs of [`specs`] (same
/// order: the shared baseline first, then the three panels' points).
pub fn tables(runs: &[ScenarioRun]) -> Vec<Table> {
    let (a, b, c) = (points_a(), points_b(), points_c());
    let baseline = &runs[0];
    let rest = &runs[1..];
    let (runs_a, rest) = rest.split_at(a.len());
    let (runs_b, runs_c) = rest.split_at(b.len());
    vec![
        panel_table(
            "fig15a",
            "partitioning thresholds T1 x T5",
            &a,
            baseline,
            runs_a,
        ),
        panel_table(
            "fig15b",
            "antagonist detection thresholds T2/T3/T4",
            &b,
            baseline,
            runs_b,
        ),
        panel_table("fig15c", "stable interval vs oracle", &c, baseline, runs_c),
    ]
}

/// Fig. 15a: T1 × T5 sweep, serial.
pub fn run_a(opts: &RunOpts) -> Table {
    run_a_with(opts, &SweepRunner::serial())
}

/// Fig. 15a: T1 × T5 sweep over `runner`.
pub fn run_a_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    run_panel(
        opts,
        runner,
        "fig15a",
        "partitioning thresholds T1 x T5",
        &points_a(),
    )
}

/// Fig. 15b: antagonist-detection thresholds T2/T3/T4, serial.
pub fn run_b(opts: &RunOpts) -> Table {
    run_b_with(opts, &SweepRunner::serial())
}

/// Fig. 15b: antagonist-detection thresholds over `runner`.
pub fn run_b_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    run_panel(
        opts,
        runner,
        "fig15b",
        "antagonist detection thresholds T2/T3/T4",
        &points_b(),
    )
}

/// Fig. 15c: stable interval sweep vs oracle, serial.
pub fn run_c(opts: &RunOpts) -> Table {
    run_c_with(opts, &SweepRunner::serial())
}

/// Fig. 15c: stable interval sweep over `runner`.
pub fn run_c_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    run_panel(
        opts,
        runner,
        "fig15c",
        "stable interval vs oracle",
        &points_c(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_t1_favours_hpws() {
        let opts = RunOpts {
            warmup: 14,
            measure: 5,
            seed: 0xA4,
        };
        let tight = Thresholds {
            hpw_llc_hit_thr: 0.05,
            ..Thresholds::scaled_sim()
        };
        let loose = Thresholds {
            hpw_llc_hit_thr: 0.50,
            ..Thresholds::scaled_sim()
        };
        let (hp_tight, ..) = run_point(&opts, tight);
        let (hp_loose, ..) = run_point(&opts, loose);
        // A lower T1 constrains the LP zone, protecting HPWs (§5.7).
        assert!(
            hp_tight >= hp_loose * 0.95,
            "tight T1 must not hurt HPWs: tight={hp_tight:.3} loose={hp_loose:.3}"
        );
    }
}
