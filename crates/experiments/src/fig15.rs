//! Fig. 15: sensitivity of A4 to its thresholds and timing parameters,
//! on the HPW-heavy mix, reported as average relative performance
//! (HP / LP / all) normalized to the Default model.
//!
//! * 15a — partitioning thresholds T1 × T5;
//! * 15b — antagonist-detection thresholds T2/T3/T4;
//! * 15c — stable interval 1/5/10/20 s vs an oracle that never reverts.

use crate::fig13::{perf, run_mix};
use crate::scenario::{RunOpts, Scheme};
use crate::table::Table;
use a4_core::{A4Config, A4Controller, FeatureLevel, Harness, Thresholds};
use a4_model::Priority;

/// Runs the HPW-heavy mix under full A4 with custom thresholds; returns
/// `(avg_hp, avg_lp, avg_all)` relative to the Default model.
pub fn run_point(opts: &RunOpts, thresholds: Thresholds) -> (f64, f64, f64) {
    let (default_report, default_entries) = run_mix(opts, Scheme::Default, true);

    // Re-run the same population under an A4 instance with the custom
    // thresholds.
    let (a4_report, a4_entries) = run_mix_with_thresholds(opts, thresholds);

    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for (d, a) in default_entries.iter().zip(&a4_entries) {
        let rel = perf(&a4_report, a) / perf(&default_report, d).max(1e-12);
        let bucket = if d.priority == Priority::High { 0 } else { 1 };
        sums[bucket] += rel;
        counts[bucket] += 1;
        sums[2] += rel;
        counts[2] += 1;
    }
    (
        sums[0] / counts[0] as f64,
        sums[1] / counts[1] as f64,
        sums[2] / counts[2] as f64,
    )
}

fn run_mix_with_thresholds(
    opts: &RunOpts,
    thresholds: Thresholds,
) -> (a4_core::RunReport, Vec<crate::fig13::MixEntry>) {
    // Same population as fig13 HPW-heavy, but with a parameterized A4.
    let (_, entries) = run_mix(
        &RunOpts {
            warmup: 0,
            measure: 0,
            ..*opts
        },
        Scheme::Default,
        true,
    );
    let mut sys = crate::scenario::base_system(opts);
    let nic = crate::scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let ssd = crate::scenario::attach_ssd(&mut sys).expect("port free");
    use a4_workloads::RedisRole;
    use Priority::{High, Low};
    let ids = [
        crate::scenario::add_fastclick(&mut sys, nic, &[0, 1, 2, 3], High).expect("cores"),
        crate::scenario::add_redis(&mut sys, RedisRole::Server, 4, High).expect("cores"),
        crate::scenario::add_redis(&mut sys, RedisRole::Client, 5, High).expect("cores"),
        crate::scenario::add_spec(&mut sys, "x264", 6, High).expect("cores"),
        crate::scenario::add_spec(&mut sys, "parest", 7, High).expect("cores"),
        crate::scenario::add_spec(&mut sys, "xalancbmk", 8, High).expect("cores"),
        crate::scenario::add_ffsb_heavy(&mut sys, ssd, &[9, 10, 11], High).expect("cores"),
        crate::scenario::add_spec(&mut sys, "lbm", 12, Low).expect("cores"),
        crate::scenario::add_spec(&mut sys, "omnetpp", 13, Low).expect("cores"),
        crate::scenario::add_spec(&mut sys, "exchange2", 14, Low).expect("cores"),
        crate::scenario::add_spec(&mut sys, "bwaves", 15, Low).expect("cores"),
    ];
    let mut harness = Harness::new(sys);
    harness.attach_policy(Box::new(A4Controller::new(A4Config::with_level(
        FeatureLevel::D,
        thresholds,
    ))));
    let report = harness.run(opts.warmup, opts.measure);
    let entries = entries
        .into_iter()
        .zip(ids)
        .map(|(mut e, id)| {
            e.id = id;
            e
        })
        .collect();
    (report, entries)
}

/// Fig. 15a: T1 × T5 sweep.
pub fn run_a(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig15a",
        "partitioning thresholds T1 x T5",
        ["avg_hp", "avg_lp", "avg_all"],
    );
    let base = Thresholds::scaled_sim();
    for t1 in [0.10, 0.20, 0.30] {
        for t5 in [0.80, 0.60, 0.45] {
            let t = Thresholds {
                hpw_llc_hit_thr: t1,
                ant_cache_miss_thr: t5,
                ..base
            };
            let (hp, lp, all) = run_point(opts, t);
            table.push(format!("T1={t1:.2} T5={t5:.2}"), [hp, lp, all]);
        }
    }
    table
}

/// Fig. 15b: antagonist-detection thresholds T2/T3/T4.
pub fn run_b(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig15b",
        "antagonist detection thresholds T2/T3/T4",
        ["avg_hp", "avg_lp", "avg_all"],
    );
    let base = Thresholds::scaled_sim();
    for (t2, t3, t4) in [
        (0.40, 0.35, 0.40),
        (0.65, 0.35, 0.40),
        (0.40, 0.65, 0.40),
        (0.40, 0.35, 0.80),
        (0.90, 0.90, 0.95),
    ] {
        let t = Thresholds {
            dmalk_dca_ms_thr: t2,
            dmalk_io_tp_thr: t3,
            dmalk_llc_ms_thr: t4,
            ..base
        };
        let (hp, lp, all) = run_point(opts, t);
        table.push(format!("T2={t2:.2} T3={t3:.2} T4={t4:.2}"), [hp, lp, all]);
    }
    table
}

/// Fig. 15c: stable-interval sweep vs oracle (never reverts).
pub fn run_c(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig15c",
        "stable interval vs oracle",
        ["avg_hp", "avg_lp", "avg_all"],
    );
    let base = Thresholds::scaled_sim();
    for (label, interval) in [
        ("1s", 1),
        ("5s", 5),
        ("10s", 10),
        ("20s", 20),
        ("oracle", u64::MAX / 2),
    ] {
        let t = Thresholds {
            stable_interval: interval,
            ..base
        };
        let (hp, lp, all) = run_point(opts, t);
        table.push(label, [hp, lp, all]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_t1_favours_hpws() {
        let opts = RunOpts {
            warmup: 14,
            measure: 5,
            seed: 0xA4,
        };
        let tight = Thresholds {
            hpw_llc_hit_thr: 0.05,
            ..Thresholds::scaled_sim()
        };
        let loose = Thresholds {
            hpw_llc_hit_thr: 0.50,
            ..Thresholds::scaled_sim()
        };
        let (hp_tight, ..) = run_point(&opts, tight);
        let (hp_loose, ..) = run_point(&opts, loose);
        // A lower T1 constrains the LP zone, protecting HPWs (§5.7).
        assert!(
            hp_tight >= hp_loose * 0.95,
            "tight T1 must not hurt HPWs: tight={hp_tight:.3} loose={hp_loose:.3}"
        );
    }
}
