//! Fig. 3: the way-sweep that exposes latent contention (DCA ways),
//! DMA bloat (the DPDK ways) and the hidden **directory contention**
//! (the inclusive ways).
//!
//! Setup (§3.1): DPDK-T or DPDK-NT on 4 cores with per-core rings of 1 KB
//! packets, explicitly allocated to ways `[5:6]`; cache-sensitive X-Mem
//! (4 MB sequential read, 2 cores) swept across every pair of consecutive
//! ways from `[0:1]` (the DCA ways) to `[9:10]` (the inclusive ways).
//!
//! Expected shape: X-Mem's miss rate spikes at `[0:1]`/`[1:2]` for both
//! variants (latent contention); only DPDK-**T** adds the `[5:6]` bump
//! (DMA bloat) and the `[9:10]` bump (directory contention, observation
//! O1).

use crate::runner::{SweepRunner, TypedAxis};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::{Priority, WayMask};

/// The ten swept X-Mem masks `[m:m+1]`.
pub fn sweep_masks() -> Vec<WayMask> {
    (0..=9)
        .map(|m| WayMask::from_paper_range(m, m + 1).expect("within 11 ways"))
        .collect()
}

/// The swept masks as a typed axis (row labels are the mask displays).
pub fn axis() -> TypedAxis<WayMask> {
    TypedAxis::labeled("xmem_mask", sweep_masks())
}

/// The declarative cell: DPDK (T or NT) pinned to ways `[5:6]`, X-Mem
/// swept across `xmem_mask`.
pub fn spec(opts: &RunOpts, touch: bool, xmem_mask: WayMask) -> ScenarioSpec {
    let kind = if touch { "t" } else { "nt" };
    ScenarioSpec::new(format!("fig3 dpdk-{kind} xmem@{xmem_mask}"), *opts)
        .with_nic(4, 1024)
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch,
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::High,
        )
        .with_cat(
            1,
            WayMask::from_paper_range(5, 6).expect("static"),
            &["dpdk"],
        )
        .with_cat(2, xmem_mask, &["xmem"])
}

/// All cells of one panel, in row order.
pub fn specs(opts: &RunOpts, touch: bool) -> Vec<ScenarioSpec> {
    axis()
        .values
        .into_iter()
        .map(|mask| spec(opts, touch, mask))
        .collect()
}

/// Renders one panel from the runs of [`specs`] (same order). Pure:
/// looks only at the results, never simulates.
pub fn table(touch: bool, runs: &[ScenarioRun]) -> Table {
    let (id, title) = if touch {
        ("fig3b", "DPDK-T (touching) vs X-Mem way sweep")
    } else {
        ("fig3a", "DPDK-NT (non-touching) vs X-Mem way sweep")
    };
    let mut table = Table::new(
        id,
        title,
        ["xmem_miss", "dpdk_miss", "mem_rd_gbps", "mem_wr_gbps"],
    );
    for (label, run) in axis().labels.iter().zip(runs) {
        table.push(
            label.clone(),
            [
                run.llc_miss_rate("xmem"),
                run.llc_miss_rate("dpdk"),
                run.mem_read_gbps(),
                run.mem_write_gbps(),
            ],
        );
    }
    table
}

/// Runs one sweep point and returns
/// `(xmem_miss, dpdk_miss, mem_rd_gbps, mem_wr_gbps)`.
pub fn run_point(opts: &RunOpts, touch: bool, xmem_mask: WayMask) -> (f64, f64, f64, f64) {
    let run = spec(opts, touch, xmem_mask)
        .build()
        .expect("static fig3 layout")
        .run();
    (
        run.llc_miss_rate("xmem"),
        run.llc_miss_rate("dpdk"),
        run.mem_read_gbps(),
        run.mem_write_gbps(),
    )
}

/// Runs the full sweep serially. `touch = false` reproduces Fig. 3a
/// (DPDK-NT), `touch = true` Fig. 3b (DPDK-T).
pub fn run(opts: &RunOpts, touch: bool) -> Table {
    run_with(opts, touch, &SweepRunner::serial())
}

/// Runs the full sweep, fanning cells out over `runner`.
pub fn run_with(opts: &RunOpts, touch: bool, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs(opts, touch))
        .expect("static fig3 layout");
    table(touch, &runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_ten_pairs() {
        let masks = sweep_masks();
        assert_eq!(masks.len(), 10);
        assert_eq!(masks[0], WayMask::DCA);
        assert_eq!(masks[9], WayMask::INCLUSIVE);
    }

    #[test]
    fn latent_contention_shows_at_dca_ways() {
        // One quick contrast point instead of the full sweep: X-Mem at the
        // DCA ways suffers much more than at neutral standard ways.
        let opts = RunOpts::quick();
        let (at_dca, ..) = run_point(&opts, true, WayMask::from_paper_range(0, 1).unwrap());
        let (at_std, ..) = run_point(&opts, true, WayMask::from_paper_range(3, 4).unwrap());
        assert!(
            at_dca > at_std + 0.1,
            "latent contention: miss at [0:1] {at_dca:.3} vs [3:4] {at_std:.3}"
        );
    }
}
