//! Fig. 3: the way-sweep that exposes latent contention (DCA ways),
//! DMA bloat (the DPDK ways) and the hidden **directory contention**
//! (the inclusive ways).
//!
//! Setup (§3.1): DPDK-T or DPDK-NT on 4 cores with per-core rings of 1 KB
//! packets, explicitly allocated to ways `[5:6]`; cache-sensitive X-Mem
//! (4 MB sequential read, 2 cores) swept across every pair of consecutive
//! ways from `[0:1]` (the DCA ways) to `[9:10]` (the inclusive ways).
//!
//! Expected shape: X-Mem's miss rate spikes at `[0:1]`/`[1:2]` for both
//! variants (latent contention); only DPDK-**T** adds the `[5:6]` bump
//! (DMA bloat) and the `[9:10]` bump (directory contention, observation
//! O1).

use crate::scenario::{self, RunOpts};
use crate::table::Table;
use a4_core::Harness;
use a4_model::{ClosId, Priority, WayMask};

/// The ten swept X-Mem masks `[m:m+1]`.
pub fn sweep_masks() -> Vec<WayMask> {
    (0..=9)
        .map(|m| WayMask::from_paper_range(m, m + 1).expect("within 11 ways"))
        .collect()
}

/// Runs one sweep point and returns
/// `(xmem_miss, dpdk_miss, mem_rd_gbps, mem_wr_gbps)`.
fn run_point(opts: &RunOpts, touch: bool, xmem_mask: WayMask) -> (f64, f64, f64, f64) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let dpdk = scenario::add_dpdk(&mut sys, nic, touch, &[0, 1, 2, 3], Priority::High)
        .expect("cores free");
    let xmem = scenario::add_xmem(&mut sys, 1, &[4, 5], Priority::High).expect("cores free");

    // Static CAT allocation as in the paper: DPDK at [5:6], X-Mem swept.
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(5, 6).expect("static"))
        .expect("valid clos");
    sys.cat_assign_workload(dpdk, ClosId(1))
        .expect("registered");
    sys.cat_set_mask(ClosId(2), xmem_mask).expect("valid clos");
    sys.cat_assign_workload(xmem, ClosId(2))
        .expect("registered");

    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    (
        report.llc_miss_rate(xmem),
        report.llc_miss_rate(dpdk),
        report.mem_read_gbps(),
        report.mem_write_gbps(),
    )
}

/// Runs the full sweep. `touch = false` reproduces Fig. 3a (DPDK-NT),
/// `touch = true` Fig. 3b (DPDK-T).
pub fn run(opts: &RunOpts, touch: bool) -> Table {
    let (id, title) = if touch {
        ("fig3b", "DPDK-T (touching) vs X-Mem way sweep")
    } else {
        ("fig3a", "DPDK-NT (non-touching) vs X-Mem way sweep")
    };
    let mut table = Table::new(
        id,
        title,
        ["xmem_miss", "dpdk_miss", "mem_rd_gbps", "mem_wr_gbps"],
    );
    for mask in sweep_masks() {
        let (xm, dm, rd, wr) = run_point(opts, touch, mask);
        table.push(mask.to_string(), [xm, dm, rd, wr]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_ten_pairs() {
        let masks = sweep_masks();
        assert_eq!(masks.len(), 10);
        assert_eq!(masks[0], WayMask::DCA);
        assert_eq!(masks[9], WayMask::INCLUSIVE);
    }

    #[test]
    fn latent_contention_shows_at_dca_ways() {
        // One quick contrast point instead of the full sweep: X-Mem at the
        // DCA ways suffers much more than at neutral standard ways.
        let opts = RunOpts::quick();
        let (at_dca, ..) = run_point(&opts, true, WayMask::from_paper_range(0, 1).unwrap());
        let (at_std, ..) = run_point(&opts, true, WayMask::from_paper_range(3, 4).unwrap());
        assert!(
            at_dca > at_std + 0.1,
            "latent contention: miss at [0:1] {at_dca:.3} vs [3:4] {at_std:.3}"
        );
    }
}
