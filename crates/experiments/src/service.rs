//! The sweep service: figures as data.
//!
//! A [`SweepJob`] describes one figure sweep — figure id, run protocol,
//! replica count and seed policy — as serde-round-trippable data, and
//! expands to a flat list of [`WorkUnit`]s whose specs already carry
//! their *effective* seeds. Because the unit spec is the exact spec a
//! direct (unsharded) run would hash, any process can execute any slice
//! of the units against the shared content-addressed store
//! ([`crate::cache::ResultCache`]) and the results merge: rendering is a
//! pure function of the store ([`SweepJob::render_from_store`]), so a
//! sweep executed as one process, N `--shard i/N` processes, or a fleet
//! of queue workers ([`crate::queue`]) produces byte-identical tables.
//!
//! The figure registry ([`figures`]) pairs each figure's `specs(opts)`
//! grid with a pure `render(&[ScenarioRun]) -> Vec<Table>` function —
//! the `a4-repro` CLI is one client of this registry, not the owner of
//! it.

use crate::cache::{spec_key, ResultCache};
use crate::fault::{Backoff, FabricHealth};
use crate::queue::{JobQueue, QueueError};
use crate::runner::{derive_seed, CellFailure, SweepRunner};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, SpecError};
use crate::table::{Table, TableStats};
use crate::{fig11, fig12, fig13, fig14, fig15, fig3, fig4, fig5, fig6, fig7, fig8, fig_numa};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::ControlFlow;
use std::time::Duration;

/// Which run protocol a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Static-CAT discovery experiments ([`RunOpts::paper`]).
    Paper,
    /// Controller-driven experiments ([`RunOpts::controller`]).
    Controller,
}

impl Protocol {
    /// The protocol's standard [`RunOpts`]; `quick` selects the
    /// CI-length windows (controller figures keep enough warm-up for
    /// the controller to act).
    pub fn opts(self, quick: bool) -> RunOpts {
        match (self, quick) {
            (Protocol::Paper, false) => RunOpts::paper(),
            (Protocol::Paper, true) => RunOpts::quick(),
            (Protocol::Controller, false) => RunOpts::controller(),
            (Protocol::Controller, true) => RunOpts {
                warmup: 12,
                measure: 4,
                ..RunOpts::quick()
            },
        }
    }
}

/// One registry entry: a figure's cell grid plus its pure renderer.
#[derive(Clone, Copy)]
pub struct FigureDef {
    /// Figure id ("fig3", "fig_numa", ...).
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Which run protocol the figure uses.
    pub protocol: Protocol,
    /// The figure's cells as data, in render order.
    pub specs: fn(&RunOpts) -> Vec<ScenarioSpec>,
    /// Renders the tables from the runs of [`FigureDef::specs`], in the
    /// same order — a pure function of the results, shared by direct
    /// runs and store merges.
    pub render: fn(&[ScenarioRun]) -> Vec<Table>,
}

/// Every figure of the reproduction, in paper order.
pub fn figures() -> Vec<FigureDef> {
    vec![
        FigureDef {
            name: "fig3",
            desc: "way sweep: latent contention, DMA bloat, directory contention",
            protocol: Protocol::Paper,
            specs: |o| {
                let mut s = fig3::specs(o, false);
                s.extend(fig3::specs(o, true));
                s
            },
            render: |runs| {
                let n = runs.len() / 2;
                vec![
                    fig3::table(false, &runs[..n]),
                    fig3::table(true, &runs[n..]),
                ]
            },
        },
        FigureDef {
            name: "fig4",
            desc: "directory-contention validation: DCA on vs off",
            protocol: Protocol::Paper,
            specs: fig4::specs,
            render: |runs| vec![fig4::table(runs)],
        },
        FigureDef {
            name: "fig5",
            desc: "storage block-size sweep: throughput and DMA leak",
            protocol: Protocol::Paper,
            specs: fig5::specs,
            render: |runs| vec![fig5::table(runs)],
        },
        FigureDef {
            name: "fig6",
            desc: "FIO vs DPDK-T latency across block sizes",
            protocol: Protocol::Paper,
            specs: fig6::specs,
            render: |runs| vec![fig6::table(runs)],
        },
        FigureDef {
            name: "fig7",
            desc: "overlap vs exclude allocation strategies",
            protocol: Protocol::Paper,
            specs: fig7::specs,
            render: |runs| vec![fig7::table(runs)],
        },
        FigureDef {
            name: "fig8",
            desc: "selective DCA off + trash-way shrinking",
            protocol: Protocol::Paper,
            specs: fig8::specs,
            render: |runs| {
                let a = fig8::grid_a().len();
                vec![fig8::table_a(&runs[..a]), fig8::table_b(&runs[a..])]
            },
        },
        FigureDef {
            name: "fig11",
            desc: "X-Mem IPC/hit rate vs packet size, 3 schemes",
            protocol: Protocol::Controller,
            specs: fig11::specs,
            render: |runs| vec![fig11::table(runs)],
        },
        FigureDef {
            name: "fig12",
            desc: "network metrics vs storage block size, 3 schemes",
            protocol: Protocol::Controller,
            specs: fig12::specs,
            render: |runs| vec![fig12::table(runs)],
        },
        FigureDef {
            name: "fig13",
            desc: "real-world colocations, 6 schemes",
            protocol: Protocol::Controller,
            specs: |o| {
                let mut s = fig13::specs(o, true);
                s.extend(fig13::specs(o, false));
                s
            },
            render: |runs| {
                let n = runs.len() / 2;
                vec![
                    fig13::table(true, &runs[..n]),
                    fig13::table(false, &runs[n..]),
                ]
            },
        },
        FigureDef {
            name: "fig14",
            desc: "latency breakdowns + system-wide metrics",
            protocol: Protocol::Controller,
            specs: fig14::specs,
            render: fig14::tables,
        },
        FigureDef {
            name: "fig15",
            desc: "threshold & timing sensitivity",
            protocol: Protocol::Controller,
            specs: fig15::specs,
            render: fig15::tables,
        },
        FigureDef {
            name: "fig_numa",
            desc: "NUMA: 2-socket NIC/SSD placement + 4-socket UPI saturation ramp",
            protocol: Protocol::Controller,
            specs: |o| {
                let mut s = fig_numa::specs(o);
                s.extend(fig_numa::ramp_specs(o));
                s
            },
            render: |runs| {
                let n = fig_numa::grid().sweep().cells().len();
                vec![
                    fig_numa::table(&runs[..n]),
                    fig_numa::ramp_table(&runs[n..]),
                ]
            },
        },
    ]
}

/// Looks a figure up by id.
pub fn figure(name: &str) -> Option<FigureDef> {
    figures().into_iter().find(|f| f.name == name)
}

/// How a single-replica job seeds its cells. (Replicated jobs always
/// double-derive per `(replica, cell)`, matching
/// [`SweepRunner::replica`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Every cell runs with its spec's own seed — the paper protocol
    /// and the historical CLI default.
    SpecSeed,
    /// Cell `i` runs with [`derive_seed`]`(spec_seed, i)`, matching
    /// [`SweepRunner::derive_seeds`].
    PerCell,
}

/// One slice of a sharded sweep: shard `index` of `count` owns every
/// work unit whose global index is `index (mod count)`, so shards are
/// near-equal in size and a unit belongs to exactly one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl Shard {
    /// The whole sweep as one shard.
    pub fn full() -> Self {
        Shard { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn new(index: u64, count: u64) -> Self {
        assert!(index < count, "shard index {index} must be < count {count}");
        Shard { index, count }
    }

    /// Parses the CLI form `"i/N"`.
    ///
    /// # Errors
    ///
    /// Describes the malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard {s:?} is not of the form i/N"))?;
        let index: u64 = i
            .parse()
            .map_err(|_| format!("shard index {i:?} is not an integer"))?;
        let count: u64 = n
            .parse()
            .map_err(|_| format!("shard count {n:?} is not an integer"))?;
        if count == 0 || index >= count {
            return Err(format!("shard {s:?} needs 0 <= i < N"));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns global work-unit `index`.
    pub fn owns(&self, unit: u64) -> bool {
        unit % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The job description format version ([`SweepJob::schema`]).
pub const JOB_SCHEMA: u32 = 1;

/// A complete, serializable description of one figure sweep: any
/// process holding this value (and the same build) expands the same
/// [`WorkUnit`]s and can execute any [`Shard`] of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepJob {
    /// Job format version (see [`JOB_SCHEMA`]). Distinct from the
    /// scenario schema: jobs are short-lived queue entries, specs are
    /// durable dumps.
    pub schema: u32,
    /// The figure id (must name a [`figures`] entry).
    pub figure: String,
    /// Run protocol of every cell.
    pub opts: RunOpts,
    /// Replica count (>= 1); replicas > 1 render as mean ± stddev.
    pub replicas: u64,
    /// Seed policy for single-replica jobs.
    pub seed_policy: SeedPolicy,
}

/// One executable unit of a [`SweepJob`]: a `(replica, cell)` pair with
/// its effective, seed-baked spec.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Global unit index (replica-major), the [`Shard::owns`] input.
    pub index: u64,
    /// Replica this unit belongs to.
    pub replica: u64,
    /// Cell index within the figure's spec grid.
    pub cell: usize,
    /// The effective spec: seeds are already derived, so
    /// [`spec_key`]`(&unit.spec)` is the store key that sharded and
    /// unsharded executions share.
    pub spec: ScenarioSpec,
}

/// What a sweep-service operation can fail with.
#[derive(Debug)]
pub enum ServiceError {
    /// The job names a figure the registry does not know.
    UnknownFigure(String),
    /// The operation needs a shared store but the runner has no cache.
    NoStore,
    /// A cell failed to build or validate.
    Spec(SpecError),
    /// Rendering from the store found unexecuted cells (a partial
    /// sweep): `missing` lists their spec names (truncated).
    MissingCells {
        /// The figure whose sweep is incomplete.
        figure: String,
        /// Total work units of the job.
        total: usize,
        /// Names of the missing cells (at most a few are listed).
        missing: Vec<String>,
    },
    /// A queue operation failed past its retry budget.
    Queue(QueueError),
    /// A shard execution was aborted by its progress callback (a worker
    /// whose lease heartbeat keeps failing) after `done` of `total`
    /// units.
    Aborted {
        /// Units finished before the abort.
        done: usize,
        /// Units the shard owns.
        total: usize,
    },
    /// Some cells of a shard failed (panic, build error, watchdog
    /// abort) while the rest completed into the store — the shard is
    /// partial, not lost.
    CellsFailed {
        /// The figure whose shard degraded.
        figure: String,
        /// The recorded failures, by shard-local unit index.
        failures: Vec<CellFailure>,
        /// Units the shard owns.
        total: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownFigure(name) => write!(f, "unknown figure {name:?}"),
            ServiceError::NoStore => {
                write!(f, "sharded execution needs a shared store (a cache dir)")
            }
            ServiceError::Spec(e) => write!(f, "{e}"),
            ServiceError::MissingCells {
                figure,
                total,
                missing,
            } => {
                let shown: Vec<&str> = missing.iter().take(8).map(String::as_str).collect();
                write!(
                    f,
                    "{figure}: {} of {total} cell(s) not in the store yet \
                     (run the missing shards first): {}{}",
                    missing.len(),
                    shown.join(", "),
                    if missing.len() > shown.len() {
                        ", ..."
                    } else {
                        ""
                    }
                )
            }
            ServiceError::Queue(e) => write!(f, "{e}"),
            ServiceError::Aborted { done, total } => write!(
                f,
                "shard aborted after {done} of {total} unit(s): \
                 lease heartbeat kept failing"
            ),
            ServiceError::CellsFailed {
                figure,
                failures,
                total,
            } => {
                write!(f, "{figure}: {} of {total} cell(s) failed:", failures.len())?;
                for failure in failures.iter().take(4) {
                    write!(f, " [{failure}]")?;
                }
                if failures.len() > 4 {
                    write!(f, " ...")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Queue(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ServiceError {
    fn from(e: SpecError) -> Self {
        ServiceError::Spec(e)
    }
}

impl From<QueueError> for ServiceError {
    fn from(e: QueueError) -> Self {
        ServiceError::Queue(e)
    }
}

impl SweepJob {
    /// A job for `figure` under `opts`; `replicas` is clamped to at
    /// least 1.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`] if the registry has no such
    /// figure.
    pub fn new(
        figure: &str,
        opts: RunOpts,
        replicas: u64,
        seed_policy: SeedPolicy,
    ) -> Result<Self, ServiceError> {
        let job = SweepJob {
            schema: JOB_SCHEMA,
            figure: figure.to_string(),
            opts,
            replicas: replicas.max(1),
            seed_policy,
        };
        job.def()?;
        Ok(job)
    }

    /// The registry entry this job sweeps.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`] for jobs deserialized from an
    /// unknown figure id.
    pub fn def(&self) -> Result<FigureDef, ServiceError> {
        figure(&self.figure).ok_or_else(|| ServiceError::UnknownFigure(self.figure.clone()))
    }

    /// The effective spec of `(replica r, cell i)`: replicated jobs
    /// double-derive exactly like [`SweepRunner::replica`]; otherwise
    /// the [`SeedPolicy`] applies. Cell indices are figure-global (the
    /// concatenated [`FigureDef::specs`] order).
    fn bake(&self, spec: &ScenarioSpec, r: u64, i: u64) -> ScenarioSpec {
        if self.replicas > 1 {
            spec.clone()
                .with_seed(derive_seed(derive_seed(spec.opts.seed, r), i))
        } else {
            match self.seed_policy {
                SeedPolicy::SpecSeed => spec.clone(),
                SeedPolicy::PerCell => spec.clone().with_seed(derive_seed(spec.opts.seed, i)),
            }
        }
    }

    /// Every work unit of the job, replica-major, with effective specs.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`].
    pub fn units(&self) -> Result<Vec<WorkUnit>, ServiceError> {
        let def = self.def()?;
        let specs = (def.specs)(&self.opts);
        let mut units = Vec::with_capacity(specs.len() * self.replicas as usize);
        for r in 0..self.replicas {
            for (i, spec) in specs.iter().enumerate() {
                units.push(WorkUnit {
                    index: units.len() as u64,
                    replica: r,
                    cell: i,
                    spec: self.bake(spec, r, i as u64),
                });
            }
        }
        Ok(units)
    }

    /// The units `shard` owns.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`].
    pub fn shard_units(&self, shard: Shard) -> Result<Vec<WorkUnit>, ServiceError> {
        Ok(self
            .units()?
            .into_iter()
            .filter(|u| shard.owns(u.index))
            .collect())
    }

    /// Executes `shard`'s units against the runner's store and returns
    /// how many units it owns. Units already in the store are loaded,
    /// not re-simulated, so re-executing a shard (a restarted worker, a
    /// re-claimed lease) is idempotent. The runner must be *plain* — no
    /// [`SweepRunner::replica`]/[`SweepRunner::derive_seeds`] — because
    /// unit specs already carry their effective seeds.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoStore`] without a cache dir; build failures as
    /// [`ServiceError::Spec`].
    pub fn execute_shard(&self, shard: Shard, runner: &SweepRunner) -> Result<usize, ServiceError> {
        self.execute_shard_with(shard, runner, |_, _| ControlFlow::Continue(()))
    }

    /// [`SweepJob::execute_shard`] with a progress callback invoked
    /// after every batch of `runner.threads()` units as
    /// `progress(done, total)` — queue workers heartbeat their lease
    /// from it. Returning [`ControlFlow::Break`] aborts the shard
    /// between batches (already-executed units stay in the store, so a
    /// re-claim resumes where this attempt stopped).
    ///
    /// Cells are executed through the runner's supervised path: a
    /// panicking, build-failing, or watchdog-aborted cell is recorded
    /// as a [`CellFailure`] while every other cell in the shard still
    /// completes into the store. The failures surface at the end as
    /// [`ServiceError::CellsFailed`] (with shard-local unit indices),
    /// so a re-claim only re-simulates the cells that actually failed.
    ///
    /// # Errors
    ///
    /// As [`SweepJob::execute_shard`], plus [`ServiceError::Aborted`]
    /// when the callback breaks and [`ServiceError::CellsFailed`] when
    /// any cell degrades.
    pub fn execute_shard_with(
        &self,
        shard: Shard,
        runner: &SweepRunner,
        mut progress: impl FnMut(usize, usize) -> ControlFlow<()>,
    ) -> Result<usize, ServiceError> {
        if runner.cache().is_none() {
            return Err(ServiceError::NoStore);
        }
        let units = self.shard_units(shard)?;
        let specs: Vec<ScenarioSpec> = units.into_iter().map(|u| u.spec).collect();
        let total = specs.len();
        let mut done = 0;
        let mut failures: Vec<CellFailure> = Vec::new();
        for batch in specs.chunks(runner.threads().max(1)) {
            let outcome = runner.run_specs_robust(batch);
            // Failure indices are batch-relative; rebase onto the
            // shard-local unit index before accumulating.
            failures.extend(outcome.failures.into_iter().map(|mut f| {
                f.index += done;
                f
            }));
            done += batch.len();
            if progress(done, total).is_break() {
                return Err(ServiceError::Aborted { done, total });
            }
        }
        if failures.is_empty() {
            Ok(total)
        } else {
            Err(ServiceError::CellsFailed {
                figure: self.figure.clone(),
                failures,
                total,
            })
        }
    }

    /// Loads every unit's report from the store and rebuilds the runs,
    /// grouped per replica in cell order — the merge-on-read of a
    /// (possibly sharded, possibly partial) sweep.
    ///
    /// # Errors
    ///
    /// [`ServiceError::MissingCells`] if any unit has no store entry.
    pub fn load_runs(&self, store: &ResultCache) -> Result<Vec<Vec<ScenarioRun>>, ServiceError> {
        self.load_runs_inner(store, false).map(|(runs, _, _)| runs)
    }

    /// [`SweepJob::load_runs`], but missing cells become
    /// [`ScenarioSpec::missing_run`] placeholders (every metric NaN)
    /// instead of an error. Returns the runs plus
    /// `(missing, total)` unit counts.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`].
    pub fn load_runs_best_effort(
        &self,
        store: &ResultCache,
    ) -> Result<(Vec<Vec<ScenarioRun>>, usize, usize), ServiceError> {
        self.load_runs_inner(store, true)
    }

    fn load_runs_inner(
        &self,
        store: &ResultCache,
        best_effort: bool,
    ) -> Result<(Vec<Vec<ScenarioRun>>, usize, usize), ServiceError> {
        let units = self.units()?;
        let total = units.len();
        let cells = total / self.replicas as usize;
        let mut per_replica: Vec<Vec<Option<ScenarioRun>>> = (0..self.replicas)
            .map(|_| (0..cells).map(|_| None).collect())
            .collect();
        let mut missing = Vec::new();
        for unit in units {
            let run = match store.load(&spec_key(&unit.spec)) {
                Some(report) => unit.spec.run_from_report(report),
                None => {
                    missing.push(unit.spec.name.clone());
                    if !best_effort {
                        continue;
                    }
                    unit.spec.missing_run()
                }
            };
            per_replica[unit.replica as usize][unit.cell] = Some(run);
        }
        if !missing.is_empty() && !best_effort {
            return Err(ServiceError::MissingCells {
                figure: self.figure.clone(),
                total,
                missing,
            });
        }
        let runs = per_replica
            .into_iter()
            .map(|runs| {
                runs.into_iter()
                    // a4-lint: allow(panic-unwrap) -- unreachable: strict mode early-returned MissingCells on any None; best-effort filled every None with a placeholder
                    .map(|r| r.expect("no cell missing"))
                    .collect()
            })
            .collect();
        Ok((runs, missing.len(), total))
    }

    /// Renders per-replica runs into the job's tables: one table set
    /// for a single replica, cell-wise mean ± stddev otherwise.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`].
    ///
    /// # Panics
    ///
    /// Panics if `per_replica` does not hold one complete run set per
    /// replica (as [`SweepJob::load_runs`] and [`SweepJob::execute`]
    /// produce).
    pub fn render(&self, per_replica: &[Vec<ScenarioRun>]) -> Result<JobTables, ServiceError> {
        let def = self.def()?;
        assert_eq!(
            per_replica.len(),
            self.replicas as usize,
            "one run set per replica"
        );
        if self.replicas > 1 {
            let reps: Vec<Vec<Table>> = per_replica.iter().map(|runs| (def.render)(runs)).collect();
            let stats = (0..reps[0].len())
                .map(|ti| {
                    let group: Vec<Table> = reps.iter().map(|r| r[ti].clone()).collect();
                    TableStats::from_replicas(&group)
                })
                .collect();
            Ok(JobTables::Replicated(stats))
        } else {
            Ok(JobTables::Single((def.render)(&per_replica[0])))
        }
    }

    /// Renders the job's tables purely from the store — the merge pass
    /// after sharded execution. Never simulates.
    ///
    /// # Errors
    ///
    /// [`ServiceError::MissingCells`] for partial sweeps.
    pub fn render_from_store(&self, store: &ResultCache) -> Result<JobTables, ServiceError> {
        self.render(&self.load_runs(store)?)
    }

    /// [`SweepJob::render_from_store`] in best-effort mode: a partial
    /// sweep renders with `(missing)` cells (NaN values) instead of
    /// erroring, and every table title is suffixed with the shortfall.
    /// Returns the tables plus `(missing, total)` unit counts —
    /// `missing == 0` means the output is byte-identical to the strict
    /// merge.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownFigure`].
    pub fn render_from_store_best_effort(
        &self,
        store: &ResultCache,
    ) -> Result<(JobTables, usize, usize), ServiceError> {
        let (runs, missing, total) = self.load_runs_best_effort(store)?;
        let mut tables = self.render(&runs)?;
        if missing > 0 {
            let suffix = format!(" [best-effort: {missing}/{total} cells missing]");
            match &mut tables {
                JobTables::Single(ts) => {
                    for t in ts {
                        t.title.push_str(&suffix);
                    }
                }
                JobTables::Replicated(stats) => {
                    for s in stats {
                        s.mean.title.push_str(&suffix);
                        s.stddev.title.push_str(&suffix);
                    }
                }
            }
        }
        Ok((tables, missing, total))
    }

    /// Executes the whole job on `runner` (store-backed cells load
    /// instead of simulating) and renders its tables — the direct,
    /// single-process path. The runner must be plain (see
    /// [`SweepJob::execute_shard`]).
    ///
    /// # Errors
    ///
    /// Build failures as [`ServiceError::Spec`].
    pub fn execute(&self, runner: &SweepRunner) -> Result<JobTables, ServiceError> {
        let units = self.units()?;
        let cells = units.len() / self.replicas as usize;
        let mut per_replica = Vec::with_capacity(self.replicas as usize);
        for r in 0..self.replicas as usize {
            let specs: Vec<ScenarioSpec> = units[r * cells..(r + 1) * cells]
                .iter()
                .map(|u| u.spec.clone())
                .collect();
            per_replica.push(runner.run_specs(&specs)?);
        }
        self.render(&per_replica)
    }
}

/// A rendered job: plain tables, or mean ± stddev for replicated jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobTables {
    /// One table set (single replica).
    Single(Vec<Table>),
    /// Cell-wise statistics over the replicas.
    Replicated(Vec<TableStats>),
}

/// Consecutive lease-heartbeat failures a worker tolerates before it
/// releases its task and exits rather than keep executing un-leased
/// (a stale-reclaimer would hand the same task to a second worker).
pub const MAX_HEARTBEAT_FAILURES: u32 = 3;

/// Execution attempts a task gets before [`drain_queue`] quarantines
/// it as exhausted ([`crate::queue::JobQueue::quarantine_exhausted`])
/// instead of claiming it again — the circuit breaker that keeps a
/// deterministically-failing task (a cell that always panics, a
/// runaway cell the watchdog always kills) from being retried forever.
pub const MAX_ATTEMPTS: u64 = 3;

/// What one [`drain_queue`] pass did — the worker-side half of a
/// [`FabricHealth`] summary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Tasks claimed and completed.
    pub tasks: usize,
    /// Work units executed (or loaded from the store) across them.
    pub executed: usize,
    /// Stale leases requeued before claiming.
    pub reclaimed: usize,
    /// Tasks quarantined as exhausted (claimed more than the attempt
    /// budget allows).
    pub exhausted: usize,
    /// Cell failures (panics, build errors, watchdog aborts) recorded
    /// across released tasks.
    pub cell_failures: u64,
    /// Transient queue errors absorbed by retry.
    pub retries: u64,
    /// Lease heartbeats that failed (not necessarily fatal).
    pub heartbeat_failures: u64,
    /// Whether the worker released its task and stopped early because
    /// heartbeats kept failing ([`MAX_HEARTBEAT_FAILURES`]).
    pub released: bool,
}

/// Claims and executes tasks from `queue` until it is empty, retrying
/// transient queue errors with `backoff` — the library form of the
/// `--worker` loop. Stale leases older than `max_age` (clamped by
/// [`crate::queue::MIN_STALE_AGE`]) are requeued first. A worker whose
/// lease heartbeat fails [`MAX_HEARTBEAT_FAILURES`] times in a row
/// releases the task and returns cleanly with
/// [`DrainReport::released`] set, instead of racing a reclaimer for
/// ownership. `log` receives one line per notable event.
///
/// A task that degrades ([`ServiceError::CellsFailed`]) is released
/// back to `pending/` and the drain continues: completed cells are
/// already in the store, so the retry only re-simulates the failed
/// ones. The queue counts attempts per task; a claim whose lease shows
/// more than `max_attempts` attempts is quarantined as exhausted
/// instead of executed, which guarantees the loop terminates even for
/// a task that fails deterministically.
///
/// # Errors
///
/// [`ServiceError::Queue`] once an operation exhausts its retry
/// budget; non-degradation execution failures as
/// [`SweepJob::execute_shard`]. The failed task is released back to
/// `pending/` on a best-effort basis first.
pub fn drain_queue(
    queue: &JobQueue,
    runner: &SweepRunner,
    worker: &str,
    max_age: Duration,
    max_attempts: u64,
    backoff: &Backoff,
    mut log: impl FnMut(&str),
) -> Result<DrainReport, ServiceError> {
    let mut rep = DrainReport::default();
    rep.reclaimed = backoff.retry(&mut rep.retries, || queue.reclaim_stale(max_age))?;
    if rep.reclaimed > 0 {
        log(&format!("requeued {} stale lease(s)", rep.reclaimed));
    }
    let mut empty_checks = 0u32;
    loop {
        let claimed = backoff.retry(&mut rep.retries, || queue.claim(worker))?;
        let Some(lease) = claimed else {
            // A claim that finds nothing is ambiguous under faults: the
            // queue may be empty, or the claiming rename may have been
            // refused. Re-check `pending` a bounded number of times
            // before concluding the queue is drained.
            let (pending, _, _) = backoff.retry(&mut rep.retries, || queue.counts())?;
            if pending == 0 || empty_checks >= backoff.attempts {
                break;
            }
            empty_checks += 1;
            std::thread::sleep(backoff.delay(empty_checks));
            continue;
        };
        empty_checks = 0;
        if lease.attempts > max_attempts {
            backoff.retry(&mut rep.retries, || queue.try_quarantine_exhausted(&lease))?;
            rep.exhausted += 1;
            log(&format!(
                "quarantined {} as exhausted (attempt {} > budget {max_attempts})",
                lease.id(),
                lease.attempts
            ));
            continue;
        }
        let task = lease.task.clone();
        log(&format!(
            "claimed {} ({} shard {}, attempt {})",
            lease.id(),
            task.job.figure,
            task.shard,
            lease.attempts
        ));
        let mut consecutive_hb = 0u32;
        let mut hb_failures = 0u64;
        let outcome =
            task.job
                .execute_shard_with(task.shard, runner, |_, _| match lease.heartbeat() {
                    Ok(()) => {
                        consecutive_hb = 0;
                        ControlFlow::Continue(())
                    }
                    Err(_) => {
                        hb_failures += 1;
                        consecutive_hb += 1;
                        if consecutive_hb >= MAX_HEARTBEAT_FAILURES {
                            ControlFlow::Break(())
                        } else {
                            ControlFlow::Continue(())
                        }
                    }
                });
        rep.heartbeat_failures += hb_failures;
        match outcome {
            Ok(units) => {
                backoff.retry(&mut rep.retries, || queue.try_complete(&lease))?;
                rep.tasks += 1;
                rep.executed += units;
                log(&format!("completed {} ({units} unit(s))", lease.id()));
            }
            Err(ServiceError::Aborted { done, total }) => {
                backoff.retry(&mut rep.retries, || queue.try_release(&lease))?;
                rep.released = true;
                log(&format!(
                    "heartbeat failed {consecutive_hb}x; released {} after {done}/{total} unit(s), exiting",
                    lease.id()
                ));
                break;
            }
            Err(ServiceError::CellsFailed {
                failures, total, ..
            }) => {
                // The task degraded but did not die: completed cells
                // are in the store, so release it for a retry that
                // only re-simulates the failed cells. Attempt counting
                // bounds the retries — an always-failing task is
                // quarantined once its claim count exceeds the budget.
                backoff.retry(&mut rep.retries, || queue.try_release(&lease))?;
                rep.cell_failures += failures.len() as u64;
                log(&format!(
                    "released {}: {} of {total} cell(s) failed ({})",
                    lease.id(),
                    failures.len(),
                    failures
                        .first()
                        .map_or_else(String::new, ToString::to_string)
                ));
            }
            Err(e) => {
                // Give the task back so another worker can try it; the
                // execution error is the one worth reporting.
                let _released = backoff.retry(&mut rep.retries, || queue.try_release(&lease));
                return Err(e);
            }
        }
    }
    Ok(rep)
}

/// Assembles the fabric-wide health summary from whichever components
/// a mode actually used: the store's counters, the queue's poison
/// count, and a worker's [`DrainReport`].
pub fn fabric_health(
    store: Option<&ResultCache>,
    queue: Option<&JobQueue>,
    drain: Option<&DrainReport>,
) -> FabricHealth {
    let mut health = FabricHealth::default();
    if let Some(store) = store {
        health.store_write_failures = store.write_failures();
        health.quarantined = store.quarantined();
        health.retries += store.store_retries();
    }
    if let Some(queue) = queue {
        health.poisoned_tasks = queue.poisoned().unwrap_or(0) as u64;
        health.exhausted_tasks = queue.exhausted().unwrap_or(0) as u64;
    }
    if let Some(drain) = drain {
        health.retries += drain.retries;
        health.reclaimed_leases = drain.reclaimed as u64;
        health.heartbeat_failures = drain.heartbeat_failures;
        health.cell_failures = drain.cell_failures;
    }
    health
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOpts {
        RunOpts {
            warmup: 1,
            measure: 2,
            seed: 0xA4,
        }
    }

    #[test]
    fn registry_matches_specs_and_render_shapes() {
        let opts = RunOpts::quick();
        for def in figures() {
            let specs = (def.specs)(&opts);
            assert!(!specs.is_empty(), "{} has cells", def.name);
            for spec in &specs {
                spec.validate()
                    .unwrap_or_else(|e| panic!("{} cell invalid: {e}", def.name));
            }
        }
    }

    #[test]
    fn shards_partition_the_units() {
        let job = SweepJob::new("fig4", quick(), 1, SeedPolicy::SpecSeed).unwrap();
        let all = job.units().unwrap();
        let mut seen = vec![0usize; all.len()];
        for i in 0..3 {
            for unit in job.shard_units(Shard::new(i, 3)).unwrap() {
                seen[unit.index as usize] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "each unit in exactly one shard"
        );
        // And the effective specs are the grid specs themselves under
        // the default policy (byte-identical store keys).
        let direct = (job.def().unwrap().specs)(&quick());
        for (unit, spec) in all.iter().zip(&direct) {
            assert_eq!(spec_key(&unit.spec), spec_key(spec));
        }
    }

    #[test]
    fn replicated_units_derive_like_the_runner() {
        let job = SweepJob::new("fig4", quick(), 2, SeedPolicy::PerCell).unwrap();
        let units = job.units().unwrap();
        let specs = (job.def().unwrap().specs)(&quick());
        assert_eq!(units.len(), 2 * specs.len());
        for unit in &units {
            let expect = derive_seed(
                derive_seed(specs[unit.cell].opts.seed, unit.replica),
                unit.cell as u64,
            );
            assert_eq!(unit.spec.opts.seed, expect, "replica derivation");
        }
    }

    #[test]
    fn shard_parsing_round_trips_and_rejects_garbage() {
        let s = Shard::parse("2/5").unwrap();
        assert_eq!((s.index, s.count), (2, 5));
        assert_eq!(s.to_string(), "2/5");
        assert!(Shard::parse("5/5").is_err());
        assert!(Shard::parse("x/5").is_err());
        assert!(Shard::parse("3").is_err());
        assert!(Shard::parse("1/0").is_err());
        assert!(Shard::full().owns(17));
    }

    #[test]
    fn jobs_round_trip_through_json() {
        let job = SweepJob::new("fig12", quick(), 3, SeedPolicy::SpecSeed).unwrap();
        let json = serde_json::to_string(&job).unwrap();
        let back: SweepJob = serde_json::from_str(&json).unwrap();
        assert_eq!(back, job);
        assert_eq!(back.schema, JOB_SCHEMA);
    }

    #[test]
    fn unknown_figures_error() {
        assert!(matches!(
            SweepJob::new("fig99", quick(), 1, SeedPolicy::SpecSeed),
            Err(ServiceError::UnknownFigure(_))
        ));
    }

    #[test]
    fn failing_tasks_are_retried_then_quarantined_as_exhausted() {
        use crate::queue::{Task, MIN_STALE_AGE};

        let dir = std::env::temp_dir().join(format!("a4-service-exhaust-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let queue = JobQueue::open(&dir).unwrap();
        let job = SweepJob::new("fig4", quick(), 1, SeedPolicy::SpecSeed).unwrap();
        // A single-unit shard keeps the test fast: every attempt
        // simulates one logical second before the watchdog trips.
        let cells = job.units().unwrap().len() as u64;
        let task = Task {
            job,
            shard: Shard::new(0, cells),
        };
        queue.enqueue(&task).unwrap();

        // A 1-quantum budget makes every cell a "runaway": each
        // execution degrades with a watchdog CellFailure, the task is
        // released for retry, and the third claim exceeds the budget
        // of 2 attempts and quarantines it — all in one drain pass.
        let runner = SweepRunner::serial()
            .with_cache(ResultCache::new(&dir))
            .with_quantum_budget(1);
        let mut lines = Vec::new();
        let rep = drain_queue(
            &queue,
            &runner,
            "w1",
            MIN_STALE_AGE,
            2,
            &Backoff::fabric(),
            |line| lines.push(line.to_string()),
        )
        .expect("a deterministically-failing task must not error the drain");

        assert_eq!(rep.tasks, 0, "the task never completed");
        assert_eq!(rep.cell_failures, 2, "one failed cell per attempt");
        assert_eq!(rep.exhausted, 1, "quarantined on the third claim");
        assert_eq!(queue.exhausted().unwrap(), 1);
        assert_eq!(queue.poisoned().unwrap(), 0, "not a parse-poison");
        let (pending, leased, done) = queue.counts().unwrap();
        assert_eq!((pending, leased, done), (0, 0, 0), "out of circulation");
        assert!(
            lines.iter().any(|l| l.contains("watchdog")),
            "failure class surfaces in the log: {lines:?}"
        );

        let health = fabric_health(runner.cache(), Some(&queue), Some(&rep));
        assert_eq!(health.exhausted_tasks, 1);
        assert_eq!(health.cell_failures, 2);
        let line = health.to_string();
        assert!(
            line.contains("exhausted-tasks=1") && line.contains("cell-failures=2"),
            "fabric-health line tallies execution quarantine: {line}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_cells_are_reported_not_simulated() {
        let dir = std::env::temp_dir().join(format!("a4-service-missing-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let job = SweepJob::new("fig4", quick(), 1, SeedPolicy::SpecSeed).unwrap();
        let store = ResultCache::new(&dir);
        match job.render_from_store(&store) {
            Err(ServiceError::MissingCells { total, missing, .. }) => {
                assert_eq!(total, missing.len(), "cold store misses everything");
            }
            other => panic!("expected MissingCells, got {other:?}"),
        }
        assert_eq!(store.simulated(), 0, "rendering never simulates");
        std::fs::remove_dir_all(&dir).ok();
    }
}
