//! Foundational domain types shared by every crate of the A4 reproduction.
//!
//! The A4 paper (Park et al., ISCA 2025) manages the last-level cache (LLC)
//! of an Intel Xeon Gold 6140 at *way* granularity: 11 data ways, of which
//! the two left-most are the DDIO ("DCA") ways and the two right-most are
//! the *inclusive* ways coupled with the shared directory ways. This crate
//! provides the vocabulary for that world — way masks, CLOS ids, cache-line
//! addresses, simulated time, bandwidth units and latency histograms — so
//! the cache model, the device models, the simulator and the A4 controller
//! all speak the same types.
//!
//! # Examples
//!
//! ```
//! use a4_model::{WayMask, LLC_WAYS};
//!
//! // The paper writes CAT masks MSB-first: 0x600 is ways [0:1].
//! let dca = WayMask::from_range(0, 2).unwrap();
//! assert_eq!(dca.to_cat_bits(), 0x600);
//! assert!(dca.is_contiguous());
//! assert_eq!(LLC_WAYS, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod hist;
mod ids;
mod line;
mod time;
mod units;
mod waymask;
mod workload;

pub use error::{A4Error, Result};
pub use hist::Histogram;
pub use ids::{ClosId, CoreId, DeviceId, PortId, WorkloadId};
pub use line::{LineAddr, LINE_BYTES, LINE_SHIFT, MAX_SOCKETS, SOCKET_SHIFT};
pub use time::SimTime;
pub use units::{Bandwidth, Bytes};
pub use waymask::{WayMask, DCA_WAY_COUNT, INCLUSIVE_WAY_COUNT, LLC_WAYS};
pub use workload::{DeviceClass, Priority, WorkloadKind};
