//! Workload classification vocabulary shared by the simulator and the A4
//! controller.

use serde::{Deserialize, Serialize};
use std::fmt;

/// QoS priority of a workload, supplied by the user or cluster manager
/// (§5.1 of the paper).
///
/// # Examples
///
/// ```
/// use a4_model::Priority;
/// assert!(Priority::High.is_high());
/// assert_eq!(Priority::Low.to_string(), "LPW");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// High-Priority Workload (HPW): latency-sensitive, SLO-bearing.
    High,
    /// Low-Priority Workload (LPW): best-effort batch work.
    Low,
}

impl Priority {
    /// True for [`Priority::High`].
    #[inline]
    pub fn is_high(self) -> bool {
        matches!(self, Priority::High)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::High => write!(f, "HPW"),
            Priority::Low => write!(f, "LPW"),
        }
    }
}

/// What kind of traffic a workload generates, which determines which of the
/// paper's contentions it can participate in.
///
/// # Examples
///
/// ```
/// use a4_model::WorkloadKind;
/// assert!(WorkloadKind::NetworkIo.is_io());
/// assert!(!WorkloadKind::NonIo.is_io());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Pure CPU/memory workload (X-Mem, SPEC CPU, Redis).
    NonIo,
    /// Network-I/O workload driven by a NIC (DPDK, Fastclick).
    NetworkIo,
    /// Storage-I/O workload driven by NVMe SSDs (FIO, FFSB).
    StorageIo,
}

impl WorkloadKind {
    /// True for network- or storage-I/O workloads.
    #[inline]
    pub fn is_io(self) -> bool {
        !matches!(self, WorkloadKind::NonIo)
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::NonIo => write!(f, "non-I/O"),
            WorkloadKind::NetworkIo => write!(f, "network-I/O"),
            WorkloadKind::StorageIo => write!(f, "storage-I/O"),
        }
    }
}

/// Device class attached to a PCIe port; the granularity at which A4's
/// selective DCA disabling (F2) operates.
///
/// # Examples
///
/// ```
/// use a4_model::DeviceClass;
/// assert_eq!(DeviceClass::Nvme.to_string(), "nvme");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Network interface card.
    Nic,
    /// NVMe solid-state drive (or RAID array of them).
    Nvme,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::Nic => write!(f, "nic"),
            DeviceClass::Nvme => write!(f, "nvme"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_predicates() {
        assert!(Priority::High.is_high());
        assert!(!Priority::Low.is_high());
        assert_eq!(Priority::High.to_string(), "HPW");
    }

    #[test]
    fn kind_io_classification() {
        assert!(!WorkloadKind::NonIo.is_io());
        assert!(WorkloadKind::NetworkIo.is_io());
        assert!(WorkloadKind::StorageIo.is_io());
        assert_eq!(WorkloadKind::StorageIo.to_string(), "storage-I/O");
    }

    #[test]
    fn device_class_display() {
        assert_eq!(DeviceClass::Nic.to_string(), "nic");
        assert_eq!(DeviceClass::Nvme.to_string(), "nvme");
    }
}
