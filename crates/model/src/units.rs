//! Byte and bandwidth quantities.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A quantity of bytes (buffer sizes, transferred volumes).
///
/// # Examples
///
/// ```
/// use a4_model::Bytes;
///
/// let block = Bytes::from_kib(128);
/// assert_eq!(block.as_u64(), 131_072);
/// assert_eq!(block.lines(), 2_048);
/// assert_eq!(Bytes::from_mib(4).to_string(), "4.00 MiB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Constructs from a raw byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Constructs from KiB.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Constructs from MiB.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Number of whole 64-byte cache lines needed to hold this many bytes.
    #[inline]
    pub const fn lines(self) -> u64 {
        self.0.div_ceil(crate::line::LINE_BYTES)
    }

    /// Value in MiB as a float.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b >= KIB * KIB * KIB {
            write!(f, "{:.2} GiB", b / (KIB * KIB * KIB))
        } else if b >= KIB * KIB {
            write!(f, "{:.2} MiB", b / (KIB * KIB))
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data rate.
///
/// Stored as bytes per second. Network devices are usually quoted in Gbps
/// (decimal bits), storage and memory in GB/s (decimal bytes); constructors
/// for both exist so figures can use the paper's units.
///
/// # Examples
///
/// ```
/// use a4_model::{Bandwidth, Bytes, SimTime};
///
/// let nic = Bandwidth::from_gbps(100.0);
/// assert_eq!(nic.as_gb_s(), 12.5);
/// // Volume transferred in 1 microsecond at NIC line rate:
/// assert_eq!(nic.bytes_in(SimTime::from_micros(1)), Bytes::new(12_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Constructs from bytes per second.
    #[inline]
    pub const fn from_bytes_per_sec(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Constructs from gigabits per second (network convention).
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9 / 8.0)
    }

    /// Constructs from gigabytes per second (decimal, storage convention).
    #[inline]
    pub fn from_gb_s(gb: f64) -> Self {
        Bandwidth(gb * 1e9)
    }

    /// Bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Gigabytes per second (decimal).
    #[inline]
    pub fn as_gb_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Volume transferred in `dt` at this rate (truncating to whole bytes).
    #[inline]
    pub fn bytes_in(self, dt: SimTime) -> Bytes {
        Bytes::new((self.0 * dt.as_secs_f64()) as u64)
    }

    /// Computes the rate that transfers `volume` in `dt`.
    ///
    /// Returns [`Bandwidth::ZERO`] when `dt` is zero.
    pub fn from_volume(volume: Bytes, dt: SimTime) -> Self {
        let secs = dt.as_secs_f64();
        if secs == 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth(volume.as_u64() as f64 / secs)
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_conversions() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::new(65).lines(), 2);
        assert_eq!(Bytes::new(0).lines(), 0);
        assert_eq!(Bytes::from_mib(4).as_mib_f64(), 4.0);
    }

    #[test]
    fn bytes_arithmetic_and_sum() {
        let total: Bytes = [Bytes::new(10), Bytes::new(20)].into_iter().sum();
        assert_eq!(total, Bytes::new(30));
        assert_eq!(total - Bytes::new(10) + Bytes::new(1), Bytes::new(21));
    }

    #[test]
    fn bandwidth_units() {
        // 100 Gbps NIC = 12.5 GB/s.
        let nic = Bandwidth::from_gbps(100.0);
        assert!((nic.as_gb_s() - 12.5).abs() < 1e-9);
        assert!((nic.as_gbps() - 100.0).abs() < 1e-9);
        // 116 Gbps NVMe SSD from the paper intro = 14.5 GB/s.
        let ssd = Bandwidth::from_gbps(116.0);
        assert!((ssd.as_gb_s() - 14.5).abs() < 1e-9);
    }

    #[test]
    fn volume_rate_roundtrip() {
        let bw = Bandwidth::from_gb_s(10.0);
        let dt = SimTime::from_millis(2);
        let vol = bw.bytes_in(dt);
        assert_eq!(vol.as_u64(), 20_000_000);
        let back = Bandwidth::from_volume(vol, dt);
        assert!((back.as_gb_s() - 10.0).abs() < 1e-9);
        assert_eq!(Bandwidth::from_volume(vol, SimTime::ZERO), Bandwidth::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(Bandwidth::from_gb_s(12.5).to_string(), "12.50 GB/s");
    }
}
