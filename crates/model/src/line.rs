//! Cache-line addressing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per cache line on every CPU modelled here (Skylake-SP).
pub const LINE_BYTES: u64 = 64;

/// `log2(LINE_BYTES)`: shift that converts a byte address to a line address.
pub const LINE_SHIFT: u32 = 6;

/// Line-address bit where the home-socket index begins.
///
/// Multi-socket systems carve the line address space into one region per
/// socket: socket `s` allocates lines in `[s << SOCKET_SHIFT,
/// (s + 1) << SOCKET_SHIFT)`, so a line's home socket is a pure function
/// of its address ([`LineAddr::home_socket`]) and routing an access to
/// the owning socket's cache hierarchy costs one shift. 2^40 lines =
/// 64 TiB of address space per socket — far beyond any workload here.
pub const SOCKET_SHIFT: u32 = 40;

/// Largest socket count the NUMA model supports.
///
/// The bound is a modelling choice, not an addressing limit: the
/// [`SOCKET_SHIFT`] regions could index far more sockets, but the UPI
/// fabric (per-socket-pair links, ring/mesh hop counts) and its
/// experiment surface are only exercised and validated up to four
/// sockets — the largest Skylake-SP glueless topology.
pub const MAX_SOCKETS: usize = 4;

/// The address of one 64-byte cache line.
///
/// All cache structures in the reproduction operate at line granularity;
/// byte addresses only appear at the edges (workload generators and DMA
/// descriptors). `LineAddr` is the byte address shifted right by
/// [`LINE_SHIFT`].
///
/// # Examples
///
/// ```
/// use a4_model::{LineAddr, LINE_BYTES};
///
/// let line = LineAddr::from_byte_addr(0x1040);
/// assert_eq!(line, LineAddr(0x41));
/// assert_eq!(line.byte_addr(), 0x1040);
/// assert_eq!(LineAddr(0).span_of_bytes(130).count(), 3);
/// let _ = LINE_BYTES;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Converts a byte address to the address of its containing line.
    #[inline]
    pub fn from_byte_addr(addr: u64) -> Self {
        LineAddr(addr >> LINE_SHIFT)
    }

    /// Returns the byte address of the first byte of this line.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 << LINE_SHIFT
    }

    /// Returns the set index for a cache with `sets` sets (power of two).
    #[inline]
    pub fn set_index(self, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two(), "set count must be a power of two");
        (self.0 as usize) & (sets - 1)
    }

    /// Returns the tag for a cache with `sets` sets (power of two).
    #[inline]
    pub fn tag(self, sets: usize) -> u64 {
        debug_assert!(sets.is_power_of_two(), "set count must be a power of two");
        self.0 >> sets.trailing_zeros()
    }

    /// Returns the line immediately after this one.
    #[inline]
    pub fn next(self) -> Self {
        LineAddr(self.0 + 1)
    }

    /// Returns an iterator over the lines covering `bytes` bytes starting at
    /// the first byte of this line.
    ///
    /// A zero-byte span covers zero lines.
    pub fn span_of_bytes(self, bytes: u64) -> impl Iterator<Item = LineAddr> {
        let lines = bytes.div_ceil(LINE_BYTES);
        (self.0..self.0 + lines).map(LineAddr)
    }

    /// Offsets this line address by `lines` lines.
    #[inline]
    pub fn offset(self, lines: u64) -> Self {
        LineAddr(self.0 + lines)
    }

    /// The home socket this line's address was allocated on (see
    /// [`SOCKET_SHIFT`]). Single-socket systems allocate everything in
    /// region 0, so every address reports socket 0 there.
    #[inline]
    pub fn home_socket(self) -> usize {
        (self.0 >> SOCKET_SHIFT) as usize
    }

    /// First line of socket `socket`'s address-space region.
    #[inline]
    pub fn socket_base(socket: usize) -> Self {
        LineAddr((socket as u64) << SOCKET_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_addr_roundtrip() {
        for addr in [0u64, 63, 64, 65, 0xdead_beef] {
            let line = LineAddr::from_byte_addr(addr);
            assert_eq!(line.byte_addr(), addr & !(LINE_BYTES - 1));
        }
    }

    #[test]
    fn set_and_tag_partition_the_address() {
        let sets = 1024;
        let line = LineAddr(0xabcd_ef12);
        let rebuilt = (line.tag(sets) << 10) | line.set_index(sets) as u64;
        assert_eq!(rebuilt, line.0);
    }

    #[test]
    fn span_counts_partial_lines() {
        assert_eq!(LineAddr(0).span_of_bytes(0).count(), 0);
        assert_eq!(LineAddr(0).span_of_bytes(1).count(), 1);
        assert_eq!(LineAddr(0).span_of_bytes(64).count(), 1);
        assert_eq!(LineAddr(0).span_of_bytes(65).count(), 2);
        assert_eq!(LineAddr(10).span_of_bytes(1024).count(), 16);
        let lines: Vec<_> = LineAddr(10).span_of_bytes(128).collect();
        assert_eq!(lines, vec![LineAddr(10), LineAddr(11)]);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(LineAddr(255).to_string(), "line:0xff");
    }

    #[test]
    fn socket_regions_partition_the_address_space() {
        assert_eq!(LineAddr(0).home_socket(), 0);
        assert_eq!(LineAddr((1 << SOCKET_SHIFT) - 1).home_socket(), 0);
        assert_eq!(LineAddr::socket_base(1).home_socket(), 1);
        assert_eq!(LineAddr::socket_base(1).offset(1 << 20).home_socket(), 1);
        assert_eq!(LineAddr::socket_base(0), LineAddr(0));
    }
}
