//! Latency histogram with percentile queries.
//!
//! The paper reports average and p99 (tail) latencies for the network
//! workloads (Figs. 4, 6, 7, 8, 12, 14a). A log-bucketed histogram keeps
//! recording O(1) and memory bounded while giving ~2.4 % worst-case relative
//! error on percentiles — ample for reproducing figure *shapes*.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two (higher = finer percentile resolution).
const SUBBUCKETS: usize = 32;
/// Number of power-of-two ranges covered (values up to 2^40 ns ≈ 18 min).
const RANGES: usize = 40;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use a4_model::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.percentile(0.99);
/// assert!((960..=1024).contains(&p99), "p99 was {p99}");
/// assert!((h.mean() - 500.5).abs() < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; SUBBUCKETS * RANGES],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUBBUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize;
        let shift = msb - SUBBUCKETS.trailing_zeros() as usize;
        let range = shift + 1;
        let sub = ((value >> shift) as usize) - SUBBUCKETS;
        let idx = range * SUBBUCKETS + sub;
        idx.min(SUBBUCKETS * RANGES - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        let range = index / SUBBUCKETS;
        let sub = index % SUBBUCKETS;
        if range == 0 {
            sub as u64
        } else {
            let shift = range - 1;
            ((SUBBUCKETS + sub) as u64) << shift
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of all samples; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample; `0` when empty.
    #[inline]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample; `0` when empty.
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. `0.99` for p99).
    ///
    /// Returns the representative value of the bucket containing the
    /// requested rank; `0` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), h.percentile(0.99));
        let p50 = h.percentile(0.5);
        assert!((1234..=1280).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(500, 10);
        for _ in 0..10 {
            b.record(500);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(0.9), b.percentile(0.9));
        a.record_n(1, 0);
        assert_eq!(a.count(), 10);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_bad_quantile() {
        Histogram::new().percentile(1.5);
    }

    proptest! {
        #[test]
        fn percentile_error_is_bounded(values in prop::collection::vec(1u64..1_000_000_000, 1..500)) {
            let mut h = Histogram::new();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &v in &values {
                h.record(v);
            }
            for &q in &[0.5, 0.9, 0.99, 1.0] {
                let exact_rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[exact_rank] as f64;
                let approx = h.percentile(q) as f64;
                // Log-bucket relative error bound: one sub-bucket ≈ 1/32.
                prop_assert!(
                    (approx - exact).abs() <= exact / 16.0 + 1.0,
                    "q={q} approx={approx} exact={exact}"
                );
            }
        }

        #[test]
        fn percentiles_are_monotone(values in prop::collection::vec(0u64..u32::MAX as u64, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut last = 0;
            for i in 0..=20 {
                let p = h.percentile(i as f64 / 20.0);
                prop_assert!(p >= last);
                last = p;
            }
        }

        #[test]
        fn bucket_value_is_le_inputs_in_bucket(v in 0u64..u64::MAX / 2) {
            let idx = Histogram::bucket_index(v);
            prop_assert!(Histogram::bucket_value(idx) <= v);
        }
    }
}
