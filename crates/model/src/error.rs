//! Error type shared across the A4 reproduction crates.

use std::fmt;

/// Convenience alias for results produced by the A4 crates.
pub type Result<T> = std::result::Result<T, A4Error>;

/// Errors raised by configuration and control-plane operations.
///
/// Data-plane operations (cache lookups, DMA writes) are infallible by
/// construction; errors only arise when building configurations or when a
/// control action (for instance programming a CAT mask) is invalid.
///
/// # Examples
///
/// ```
/// use a4_model::{A4Error, WayMask};
///
/// // CAT requires contiguous masks; a hole is rejected.
/// let err = WayMask::from_bits(0b101).unwrap_err();
/// assert!(matches!(err, A4Error::NonContiguousMask { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum A4Error {
    /// A way mask had bits outside the valid `0..LLC_WAYS` range.
    InvalidWayRange {
        /// First way of the offending range.
        start: usize,
        /// One past the last way of the offending range.
        end: usize,
    },
    /// A way mask was empty where hardware requires at least one way.
    EmptyMask,
    /// Intel CAT only accepts contiguous way masks.
    NonContiguousMask {
        /// The raw bits that were rejected.
        bits: u16,
    },
    /// A CLOS id exceeded the number of supported classes of service.
    InvalidClos {
        /// The offending class-of-service id.
        clos: u8,
        /// Number of CLOSes supported by the platform.
        max: u8,
    },
    /// A core id referenced a core that does not exist on the platform.
    InvalidCore {
        /// The offending core id.
        core: u8,
        /// Number of cores on the platform.
        max: u8,
    },
    /// A device or port id referenced hardware that does not exist.
    InvalidDevice {
        /// The offending device id.
        device: u8,
    },
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// Human-readable description of the rejected parameter.
        what: &'static str,
    },
    /// The platform backend rejected or failed an operation.
    Platform {
        /// Human-readable description of the failure.
        what: String,
    },
}

impl fmt::Display for A4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            A4Error::InvalidWayRange { start, end } => {
                write!(f, "way range [{start}:{end}) outside the 11-way LLC")
            }
            A4Error::EmptyMask => write!(f, "way mask must contain at least one way"),
            A4Error::NonContiguousMask { bits } => {
                write!(f, "contiguous way mask required by CAT, got {bits:#05b}")
            }
            A4Error::InvalidClos { clos, max } => {
                write!(
                    f,
                    "class of service {clos} out of range (platform supports {max})"
                )
            }
            A4Error::InvalidCore { core, max } => {
                write!(f, "core {core} out of range (platform has {max} cores)")
            }
            A4Error::InvalidDevice { device } => write!(f, "unknown device id {device}"),
            A4Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            A4Error::Platform { what } => write!(f, "platform backend failure: {what}"),
        }
    }
}

impl std::error::Error for A4Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let samples = [
            A4Error::InvalidWayRange { start: 3, end: 17 },
            A4Error::EmptyMask,
            A4Error::NonContiguousMask { bits: 0b101 },
            A4Error::InvalidClos { clos: 99, max: 16 },
            A4Error::InvalidCore { core: 99, max: 18 },
            A4Error::InvalidDevice { device: 7 },
            A4Error::InvalidConfig {
                what: "quantum must be nonzero",
            },
            A4Error::Platform {
                what: "resctrl write failed".into(),
            },
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            let first = text.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "{text}");
            assert!(!text.ends_with('.'), "{text}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<A4Error>();
    }
}
