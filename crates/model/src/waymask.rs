//! Way masks over the 11-way Skylake LLC.
//!
//! Intel CAT programs per-CLOS *capacity bitmasks*. Two conventions exist:
//!
//! * **index order** — bit `i` set means way `i` is allocatable, with way 0
//!   being the left-most way in the paper's figures (a DCA way) and way 10
//!   the right-most (an inclusive way). This is what [`WayMask`] stores.
//! * **CAT register order** — the paper's hex values (`0x600` = ways
//!   `[0:1]`, `0x003` = ways `[9:10]`) put way 0 at the *most significant*
//!   of the 11 bits. [`WayMask::to_cat_bits`]/[`WayMask::from_cat_bits`]
//!   convert.

use crate::error::{A4Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// Number of data ways in the modelled LLC (Xeon Gold 6140: 11).
pub const LLC_WAYS: usize = 11;

/// Number of left-most ways DDIO allocates into (ways 0 and 1).
pub const DCA_WAY_COUNT: usize = 2;

/// Number of right-most *inclusive* ways coupled with the shared directory
/// ways (ways 9 and 10).
pub const INCLUSIVE_WAY_COUNT: usize = 2;

const ALL_BITS: u16 = (1 << LLC_WAYS) - 1;

/// A set of LLC ways, bit `i` ⇔ way `i`.
///
/// Constructors validate the CAT hardware restrictions (non-empty,
/// contiguous, within the 11 ways); the bit-operator impls are provided for
/// *analysis* (overlap tests) and may produce non-contiguous intermediate
/// values, so re-validate with [`WayMask::is_contiguous`] before programming
/// a result into a CLOS.
///
/// # Examples
///
/// ```
/// use a4_model::WayMask;
///
/// let dca = WayMask::DCA;
/// let inclusive = WayMask::INCLUSIVE;
/// assert_eq!(dca.count(), 2);
/// assert!((dca & inclusive).is_empty());
/// assert_eq!(WayMask::from_range(5, 7)?.to_string(), "[5:6]");
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(u16);

impl WayMask {
    /// All 11 LLC ways.
    pub const ALL: WayMask = WayMask(ALL_BITS);

    /// The two DCA (DDIO) ways: ways 0 and 1 (paper mask `0x600`).
    pub const DCA: WayMask = WayMask(0b000_0000_0011);

    /// The two inclusive ways: ways 9 and 10 (paper mask `0x003`).
    pub const INCLUSIVE: WayMask = WayMask(0b110_0000_0000);

    /// The empty mask. Not programmable into CAT; useful as an identity.
    pub const EMPTY: WayMask = WayMask(0);

    /// Standard ways: everything but the DCA and inclusive ways (ways 2-8).
    pub const STANDARD: WayMask = WayMask(ALL_BITS & !0b000_0000_0011 & !0b110_0000_0000);

    /// Creates a mask from raw index-order bits, enforcing CAT rules.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidWayRange`] for bits beyond way 10,
    /// [`A4Error::EmptyMask`] for zero, and
    /// [`A4Error::NonContiguousMask`] for masks with holes.
    pub fn from_bits(bits: u16) -> Result<Self> {
        if bits == 0 {
            return Err(A4Error::EmptyMask);
        }
        if bits & !ALL_BITS != 0 {
            return Err(A4Error::InvalidWayRange { start: 0, end: 16 });
        }
        let mask = WayMask(bits);
        if !mask.is_contiguous() {
            return Err(A4Error::NonContiguousMask { bits });
        }
        Ok(mask)
    }

    /// Creates a mask covering ways `start..end` (end exclusive).
    ///
    /// The paper's `way[m:n]` notation is **inclusive** of `n`; use
    /// [`WayMask::from_paper_range`] for that convention.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidWayRange`] if the range is empty or exceeds
    /// the 11 ways.
    pub fn from_range(start: usize, end: usize) -> Result<Self> {
        if start >= end || end > LLC_WAYS {
            return Err(A4Error::InvalidWayRange { start, end });
        }
        let bits = (ALL_BITS >> (LLC_WAYS - end)) & (ALL_BITS << start) & ALL_BITS;
        Ok(WayMask(bits))
    }

    /// Creates a mask from the paper's inclusive `way[m:n]` notation.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidWayRange`] if `m > n` or `n >= 11`.
    pub fn from_paper_range(m: usize, n: usize) -> Result<Self> {
        if m > n || n >= LLC_WAYS {
            return Err(A4Error::InvalidWayRange {
                start: m,
                end: n + 1,
            });
        }
        Self::from_range(m, n + 1)
    }

    /// Parses the CAT register encoding used in the paper's figures, where
    /// way 0 is the most significant of 11 bits (`0x600` ⇒ ways `[0:1]`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`WayMask::from_bits`].
    pub fn from_cat_bits(cat: u16) -> Result<Self> {
        if cat & !ALL_BITS != 0 {
            return Err(A4Error::InvalidWayRange { start: 0, end: 16 });
        }
        let mut bits = 0u16;
        for way in 0..LLC_WAYS {
            if cat & (1 << (LLC_WAYS - 1 - way)) != 0 {
                bits |= 1 << way;
            }
        }
        Self::from_bits(bits)
    }

    /// Returns the CAT register encoding (way 0 = MSB of 11 bits).
    pub fn to_cat_bits(self) -> u16 {
        let mut cat = 0u16;
        for way in 0..LLC_WAYS {
            if self.contains_way(way) {
                cat |= 1 << (LLC_WAYS - 1 - way);
            }
        }
        cat
    }

    /// Raw index-order bits.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Number of ways in the mask.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no way is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if way `way` is in the mask.
    #[inline]
    pub fn contains_way(self, way: usize) -> bool {
        way < LLC_WAYS && self.0 & (1 << way) != 0
    }

    /// True if every way of `other` is also in `self`.
    #[inline]
    pub fn contains(self, other: WayMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if the masks share at least one way.
    #[inline]
    pub fn overlaps(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True if the set bits form one contiguous run (CAT requirement).
    pub fn is_contiguous(self) -> bool {
        if self.0 == 0 {
            return false;
        }
        let shifted = self.0 >> self.0.trailing_zeros();
        (shifted & (shifted + 1)) == 0
    }

    /// Index of the lowest (left-most in the paper's figures) way, if any.
    pub fn first_way(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Index of the highest (right-most) way, if any.
    pub fn last_way(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(15 - self.0.leading_zeros() as usize)
        }
    }

    /// Iterates over the way indices in the mask, ascending.
    pub fn iter_ways(self) -> impl Iterator<Item = usize> {
        (0..LLC_WAYS).filter(move |&w| self.contains_way(w))
    }

    /// Grows the mask by one way to the left (toward way 0), the direction
    /// A4 expands the LP Zone (red arrow in Fig. 10a).
    ///
    /// Returns `None` when way 0 is already included.
    pub fn grow_left(self) -> Option<WayMask> {
        let first = self.first_way()?;
        if first == 0 {
            None
        } else {
            Some(WayMask(self.0 | (1 << (first - 1))))
        }
    }

    /// Shrinks the mask by one way from the left. Returns `None` when only
    /// one way remains (CAT masks cannot be empty).
    pub fn shrink_left(self) -> Option<WayMask> {
        let first = self.first_way()?;
        if self.count() <= 1 {
            None
        } else {
            Some(WayMask(self.0 & !(1 << first)))
        }
    }

    /// Shrinks the mask by one way from the right. Returns `None` when only
    /// one way remains.
    pub fn shrink_right(self) -> Option<WayMask> {
        let last = self.last_way()?;
        if self.count() <= 1 {
            None
        } else {
            Some(WayMask(self.0 & !(1 << last)))
        }
    }

    /// The complement within the 11 ways. May be non-contiguous.
    #[inline]
    pub fn complement(self) -> WayMask {
        WayMask(!self.0 & ALL_BITS)
    }
}

impl BitAnd for WayMask {
    type Output = WayMask;
    fn bitand(self, rhs: WayMask) -> WayMask {
        WayMask(self.0 & rhs.0)
    }
}

impl BitOr for WayMask {
    type Output = WayMask;
    fn bitor(self, rhs: WayMask) -> WayMask {
        WayMask(self.0 | rhs.0)
    }
}

impl Not for WayMask {
    type Output = WayMask;
    fn not(self) -> WayMask {
        self.complement()
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.first_way(), self.last_way()) {
            (Some(a), Some(b)) if self.is_contiguous() => write!(f, "[{a}:{b}]"),
            (Some(_), Some(_)) => write!(f, "{{{:#013b}}}", self.0),
            _ => write!(f, "[]"),
        }
    }
}

impl fmt::LowerHex for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.to_cat_bits(), f)
    }
}

impl fmt::Binary for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_hex_values_match_figure_3() {
        // Fig. 3 sweeps 0x600, 0x300, ..., 0x003 = [0:1], [1:2], ..., [9:10].
        let expected = [
            (0x600, (0, 1)),
            (0x300, (1, 2)),
            (0x180, (2, 3)),
            (0x0c0, (3, 4)),
            (0x060, (4, 5)),
            (0x030, (5, 6)),
            (0x018, (6, 7)),
            (0x00c, (7, 8)),
            (0x006, (8, 9)),
            (0x003, (9, 10)),
        ];
        for (cat, (m, n)) in expected {
            let mask = WayMask::from_cat_bits(cat).unwrap();
            assert_eq!(
                mask,
                WayMask::from_paper_range(m, n).unwrap(),
                "cat {cat:#x}"
            );
            assert_eq!(mask.to_cat_bits(), cat);
        }
    }

    #[test]
    fn named_masks_are_disjoint_and_cover() {
        assert!(!WayMask::DCA.overlaps(WayMask::INCLUSIVE));
        assert!(!WayMask::DCA.overlaps(WayMask::STANDARD));
        assert!(!WayMask::STANDARD.overlaps(WayMask::INCLUSIVE));
        assert_eq!(
            (WayMask::DCA | WayMask::STANDARD | WayMask::INCLUSIVE).bits(),
            WayMask::ALL.bits()
        );
        assert_eq!(WayMask::STANDARD.count(), 7);
    }

    #[test]
    fn from_range_rejects_bad_input() {
        assert!(WayMask::from_range(0, 12).is_err());
        assert!(WayMask::from_range(5, 5).is_err());
        assert!(WayMask::from_range(7, 3).is_err());
        assert!(WayMask::from_paper_range(3, 11).is_err());
    }

    #[test]
    fn from_bits_rejects_holes() {
        assert_eq!(WayMask::from_bits(0), Err(A4Error::EmptyMask));
        assert!(matches!(
            WayMask::from_bits(0b1001),
            Err(A4Error::NonContiguousMask { bits: 0b1001 })
        ));
        assert!(WayMask::from_bits(1 << 11).is_err());
    }

    #[test]
    fn grow_and_shrink_move_the_left_edge() {
        let lp = WayMask::from_paper_range(9, 10).unwrap();
        let grown = lp.grow_left().unwrap();
        assert_eq!(grown, WayMask::from_paper_range(8, 10).unwrap());
        assert_eq!(grown.shrink_left().unwrap(), lp);
        assert_eq!(WayMask::from_paper_range(0, 5).unwrap().grow_left(), None);
        let one = WayMask::from_paper_range(8, 8).unwrap();
        assert_eq!(one.shrink_left(), None);
        assert_eq!(one.shrink_right(), None);
        let trash = WayMask::from_paper_range(7, 8)
            .unwrap()
            .shrink_left()
            .unwrap();
        assert_eq!(trash, WayMask::from_paper_range(8, 8).unwrap());
    }

    #[test]
    fn display_formats() {
        assert_eq!(WayMask::DCA.to_string(), "[0:1]");
        assert_eq!(WayMask::INCLUSIVE.to_string(), "[9:10]");
        assert_eq!(format!("{:#05x}", WayMask::DCA), "0x600");
    }

    proptest! {
        #[test]
        fn contiguous_ranges_roundtrip(start in 0usize..11, len in 1usize..11) {
            prop_assume!(start + len <= 11);
            let mask = WayMask::from_range(start, start + len).unwrap();
            prop_assert!(mask.is_contiguous());
            prop_assert_eq!(mask.count(), len);
            prop_assert_eq!(mask.first_way(), Some(start));
            prop_assert_eq!(mask.last_way(), Some(start + len - 1));
            let roundtrip = WayMask::from_cat_bits(mask.to_cat_bits()).unwrap();
            prop_assert_eq!(mask, roundtrip);
        }

        #[test]
        fn iter_ways_matches_contains(bits in 1u16..(1 << 11)) {
            let mask = WayMask(bits);
            let from_iter: Vec<usize> = mask.iter_ways().collect();
            for way in 0..LLC_WAYS {
                prop_assert_eq!(from_iter.contains(&way), mask.contains_way(way));
            }
            prop_assert_eq!(from_iter.len(), mask.count());
        }

        #[test]
        fn complement_partitions(bits in 1u16..(1 << 11)) {
            let mask = WayMask(bits);
            prop_assert!(!mask.overlaps(mask.complement()));
            prop_assert_eq!((mask | mask.complement()).bits(), WayMask::ALL.bits());
        }

        #[test]
        fn grow_left_preserves_contiguity(start in 1usize..11, len in 1usize..10) {
            prop_assume!(start + len <= 11);
            let mask = WayMask::from_range(start, start + len).unwrap();
            let grown = mask.grow_left().unwrap();
            prop_assert!(grown.is_contiguous());
            prop_assert_eq!(grown.count(), len + 1);
            prop_assert!(grown.contains(mask));
        }
    }
}
