//! Strongly-typed identifiers for cores, devices, workloads, CLOSes and
//! PCIe ports.
//!
//! Newtypes keep a `CoreId` from ever being confused with a `ClosId` —
//! both are small integers, but mixing them up silently corrupts an LLC
//! allocation (see C-NEWTYPE in the Rust API guidelines).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a CPU core on the simulated (or real) socket.
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_model::CoreId;
    /// let core = CoreId(3);
    /// assert_eq!(core.index(), 3);
    /// assert_eq!(core.to_string(), "core3");
    /// ```
    CoreId, u8, "core"
);

id_type!(
    /// Identifies a PCIe-attached I/O device (NIC, NVMe SSD, ...).
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_model::DeviceId;
    /// assert_eq!(DeviceId(0).to_string(), "dev0");
    /// ```
    DeviceId, u8, "dev"
);

id_type!(
    /// Identifies a registered workload (a process group in the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_model::WorkloadId;
    /// assert_eq!(WorkloadId(12).index(), 12);
    /// ```
    WorkloadId, u16, "wl"
);

id_type!(
    /// A class of service in Intel Cache Allocation Technology.
    ///
    /// Skylake-SP exposes 16 CLOSes; CLOS 0 is the default class every core
    /// starts in.
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_model::ClosId;
    /// assert_eq!(ClosId::DEFAULT, ClosId(0));
    /// ```
    ClosId, u8, "clos"
);

id_type!(
    /// A root-complex PCIe port, the granularity at which the hidden
    /// `perfctrlsts_0` DCA knob operates.
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_model::PortId;
    /// assert_eq!(PortId(2).to_string(), "port2");
    /// ```
    PortId, u8, "port"
);

impl ClosId {
    /// The default class of service all cores boot into.
    pub const DEFAULT: ClosId = ClosId(0);
}

impl WorkloadId {
    /// Sentinel for counters that cannot be attributed to any registered
    /// workload — DMA traffic of a device no active workload owns, or
    /// egress reads served from memory.
    ///
    /// Stat tables clamp out-of-range ids to their last slot, so
    /// unattributed traffic lands in a reserved overflow row instead of
    /// silently polluting workload 0's counters (which is a real,
    /// monitorable workload in every experiment).
    pub const UNATTRIBUTED: WorkloadId = WorkloadId(u16::MAX);

    /// True if this id is the [`WorkloadId::UNATTRIBUTED`] sentinel.
    #[inline]
    pub fn is_unattributed(self) -> bool {
        self == WorkloadId::UNATTRIBUTED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(CoreId(1));
        set.insert(CoreId(1));
        set.insert(CoreId(2));
        assert_eq!(set.len(), 2);
        assert!(CoreId(1) < CoreId(2));
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(WorkloadId(7).to_string(), "wl7");
        assert_eq!(ClosId(3).to_string(), "clos3");
        assert_eq!(PortId(0).to_string(), "port0");
    }

    #[test]
    fn from_raw_roundtrip() {
        assert_eq!(CoreId::from(5u8), CoreId(5));
        assert_eq!(WorkloadId::from(500u16).index(), 500);
    }

    #[test]
    fn default_clos_is_zero() {
        assert_eq!(ClosId::DEFAULT.index(), 0);
    }
}
