//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// The A4 controller thinks in seconds (1 s monitoring interval, 2 s
/// expansion cadence, 10 s stability window); the cache and device models
/// think in nanoseconds. `SimTime` is the common clock.
///
/// # Examples
///
/// ```
/// use a4_model::SimTime;
///
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Value in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for latency deltas against warmup.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let mut t = SimTime::from_micros(10);
        t += SimTime::from_nanos(5);
        assert_eq!(t.as_nanos(), 10_005);
        assert_eq!((t - SimTime::from_nanos(5)).as_micros(), 10);
        assert_eq!(SimTime::ZERO.saturating_sub(t), SimTime::ZERO);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_micros(1));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
