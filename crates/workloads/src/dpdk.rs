//! DPDK-T and DPDK-NT: the paper's kernel-bypass network
//! microbenchmarks (§3.1).
//!
//! Each core busy-polls its own Rx ring. **DPDK-T** *touches* every
//! payload line (deep-packet-inspection style) before dropping the
//! packet; **DPDK-NT** reads only the descriptor (packet classification
//! style) and never brings payload lines into its MLC — which is why it
//! does not trigger DMA bloat or directory contention in Fig. 3a.

use a4_model::{DeviceId, WorkloadKind};
use a4_sim::{CoreCtx, LatencyKind, Workload, WorkloadInfo};

/// Per-packet CPU work beyond the memory accesses. Calibrated to the
/// paper's testbed operating point: deep-packet inspection of a 1 KB
/// packet costs a few hundred cycles, which puts 4 cores at ~90 %
/// utilization under 100 Gbps of 1 KB packets — the near-saturation
/// regime in which the paper's 300-900 us queueing latencies arise.
const PROCESS_CYCLES: f64 = 450.0;
/// Cycles burnt by one empty poll of the ring.
const POLL_CYCLES: f64 = 40.0;

/// A DPDK packet-drop microbenchmark instance.
///
/// # Examples
///
/// ```
/// use a4_model::DeviceId;
/// use a4_sim::Workload;
/// use a4_workloads::Dpdk;
///
/// let t = Dpdk::touching(DeviceId(0));
/// let nt = Dpdk::non_touching(DeviceId(0));
/// assert_eq!(t.info().name, "DPDK-T");
/// assert_eq!(nt.info().name, "DPDK-NT");
/// ```
#[derive(Debug, Clone)]
pub struct Dpdk {
    device: DeviceId,
    touch: bool,
    packets: u64,
}

impl Dpdk {
    /// DPDK-T: touches (reads) every payload line.
    pub fn touching(device: DeviceId) -> Self {
        Dpdk {
            device,
            touch: true,
            packets: 0,
        }
    }

    /// DPDK-NT: reads only the descriptor.
    pub fn non_touching(device: DeviceId) -> Self {
        Dpdk {
            device,
            touch: false,
            packets: 0,
        }
    }

    /// Packets consumed since construction.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

impl Workload for Dpdk {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: if self.touch {
                "DPDK-T".into()
            } else {
                "DPDK-NT".into()
            },
            kind: WorkloadKind::NetworkIo,
            device: Some(self.device),
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let ring = ctx.core_slot();
        let device = self.device;
        while ctx.has_budget() {
            let Some(pkt) = ctx.nic_mut(device).rx_pop(ring) else {
                ctx.compute(POLL_CYCLES, 8);
                continue;
            };
            // NIC-to-host queueing delay.
            let queue_ns = ctx.now().saturating_sub(pkt.written_at).as_nanos();
            // Packet-pointer (descriptor) access.
            let (_, desc_cost) = ctx.read_io(pkt.desc);
            let pointer_ns = ctx.cycles_to_ns(desc_cost);
            // Payload processing (DPDK-T only): one batched run per
            // packet instead of a per-line read_io loop.
            let mut process_cycles = PROCESS_CYCLES;
            if self.touch {
                ctx.read_io_run(pkt.payload, pkt.payload_lines, 0.0, 0, &mut process_cycles);
            }
            ctx.compute(PROCESS_CYCLES, 40);
            let process_ns = ctx.cycles_to_ns(process_cycles);
            let total_ns = queue_ns + pointer_ns + process_ns;
            ctx.record_latency(LatencyKind::NetQueue, queue_ns);
            ctx.record_latency(LatencyKind::NetPointer, pointer_ns);
            ctx.record_latency(LatencyKind::NetProcess, process_ns);
            ctx.record_latency(LatencyKind::NetTotal, total_ns);
            ctx.add_ops(1);
            ctx.add_io_bytes(pkt.payload_lines * a4_model::LINE_BYTES);
            self.packets += 1;
        }
    }

    fn ckpt_state(&self) -> Vec<u64> {
        vec![self.packets]
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        match state {
            [packets] => {
                self.packets = *packets;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, PortId, Priority};
    use a4_pcie::NicConfig;
    use a4_sim::{System, SystemConfig};

    fn run(touch: bool) -> (a4_sim::MonitorSample, a4_model::WorkloadId) {
        let mut sys = System::new(SystemConfig::small_test());
        let nic = sys
            .attach_nic(PortId(0), NicConfig::connectx6_100g(2, 16, 1024))
            .unwrap();
        let wl = if touch {
            Dpdk::touching(nic)
        } else {
            Dpdk::non_touching(nic)
        };
        let id = sys
            .add_workload(Box::new(wl), vec![CoreId(0), CoreId(1)], Priority::High)
            .unwrap();
        sys.run_logical_seconds(2);
        sys.sample();
        sys.run_logical_seconds(2);
        (sys.sample(), id)
    }

    #[test]
    fn dpdk_t_consumes_packets_and_records_latency() {
        let (s, id) = run(true);
        let w = s.workload(id).unwrap();
        assert!(w.ops > 10, "packets consumed: {}", w.ops);
        assert!(w.io_bytes > 0);
        let total = w.latency_of(LatencyKind::NetTotal);
        assert!(total.count > 0);
        assert!(total.mean_ns > 0.0);
        let queue = w.latency_of(LatencyKind::NetQueue);
        assert!(total.mean_ns >= queue.mean_ns);
    }

    #[test]
    fn dpdk_t_touches_payload_but_nt_does_not() {
        let (st, idt) = run(true);
        let (snt, idnt) = run(false);
        let wt = st.workload(idt).unwrap();
        let wnt = snt.workload(idnt).unwrap();
        // Touching reads ~17 lines per packet vs 1, but consumes fewer
        // packets per budget; the per-access ratio still shows clearly.
        assert!(
            wt.accesses > wnt.accesses * 2,
            "T accesses {} vs NT {}",
            wt.accesses,
            wnt.accesses
        );
        // NT never brings payload lines into MLCs, so it causes no DMA
        // bloat; T's consumed payloads do (once ring slots are reused).
        // (Migration contrast needs the full-size geometry and is covered
        // by the Fig. 3 integration test.)
        assert_eq!(wnt.dma_bloats, 0, "NT payload never reaches an MLC");
    }

    #[test]
    fn packet_counter_tracks() {
        let mut sys = System::new(SystemConfig::small_test());
        let nic = sys
            .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 16, 1024))
            .unwrap();
        let dpdk = Dpdk::touching(nic);
        assert_eq!(dpdk.packets(), 0);
        sys.add_workload(Box::new(dpdk), vec![CoreId(0)], Priority::High)
            .unwrap();
        sys.run_logical_seconds(1);
        let s = sys.sample();
        assert!(s.workloads[0].ops > 0);
    }
}
