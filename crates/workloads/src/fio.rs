//! FIO: the Flexible I/O Tester storage workload of §3.2.
//!
//! Four `libaio` threads issue random reads with `O_DIRECT` and a
//! configurable I/O depth; the paper's modified FIO additionally runs a
//! regular-expression pass over every block so the data is actually
//! brought into the MLCs. Each core keeps its own share of the queue
//! depth outstanding, reusing a private buffer pool slot per command —
//! exactly the reuse pattern that makes DCA write-update vs.
//! write-allocate matter.

use a4_model::{DeviceId, LineAddr, SimTime, WorkloadKind, LINE_BYTES};
use a4_pcie::{NvmeCommand, NvmeOp};
use a4_sim::{CoreCtx, LatencyKind, Workload, WorkloadInfo};

/// Regex-matching cost per line (the paper's "minimal processing").
const REGEX_CYCLES_PER_LINE: f64 = 12.0;
/// Cycles burnt by one empty completion poll.
const POLL_CYCLES: f64 = 60.0;
/// Submission overhead per command.
const SUBMIT_CYCLES: f64 = 120.0;

/// A FIO instance spanning one or more cores.
///
/// # Examples
///
/// ```
/// use a4_model::{DeviceId, LineAddr};
/// use a4_sim::Workload;
/// use a4_workloads::Fio;
///
/// let fio = Fio::new(DeviceId(1), LineAddr(0x8000), 56, 8, 4);
/// assert_eq!(fio.info().name, "FIO");
/// assert_eq!(fio.block_lines(), 56);
/// ```
#[derive(Debug, Clone)]
pub struct Fio {
    device: DeviceId,
    buffer_base: LineAddr,
    block_lines: u64,
    qd_per_core: usize,
    cores: usize,
    submitted_at: Vec<SimTime>,
    // LIFO of buffer slots with no command in flight. Completions free
    // exactly the slot they were submitted on, so — unlike the
    // historical `next_slot % queue_depth` rotation, which could lap a
    // still-in-flight slot when completions returned out of order — a
    // slot is never reused while its previous command is outstanding.
    free_slots: Vec<usize>,
    outstanding: usize,
    name: String,
    touch_data: bool,
    blocks_done: u64,
}

impl Fio {
    /// Creates a FIO instance: `qd_per_core × cores` commands kept in
    /// flight, each reading `block_lines` lines into a dedicated buffer
    /// slot at `buffer_base + slot × block_lines`.
    ///
    /// # Panics
    ///
    /// Panics on zero block size, depth or core count.
    pub fn new(
        device: DeviceId,
        buffer_base: LineAddr,
        block_lines: u64,
        qd_per_core: usize,
        cores: usize,
    ) -> Self {
        assert!(
            block_lines > 0 && qd_per_core > 0 && cores > 0,
            "fio parameters must be nonzero"
        );
        let slots = qd_per_core * cores;
        Fio {
            device,
            buffer_base,
            block_lines,
            qd_per_core,
            cores,
            submitted_at: vec![SimTime::ZERO; slots],
            // Reversed so the first pops hand out slots 0, 1, 2, ...
            free_slots: (0..slots).rev().collect(),
            outstanding: 0,
            name: "FIO".into(),
            touch_data: true,
            blocks_done: 0,
        }
    }

    /// Renames the instance (FFSB reuses this engine).
    pub(crate) fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Block size in lines.
    pub fn block_lines(&self) -> u64 {
        self.block_lines
    }

    /// Total queue depth across cores.
    pub fn queue_depth(&self) -> usize {
        self.qd_per_core * self.cores
    }

    /// Lines of buffer address space the instance needs.
    pub fn buffer_lines(&self) -> u64 {
        self.queue_depth() as u64 * self.block_lines
    }

    /// Blocks completed and processed since construction.
    pub fn blocks_done(&self) -> u64 {
        self.blocks_done
    }

    /// Commands currently believed in flight. Invariant:
    /// `outstanding_commands() <= queue_depth()` — the regression bar for
    /// the historical double-reap (see the reap path in
    /// [`Workload::step`]).
    pub fn outstanding_commands(&self) -> usize {
        self.outstanding
    }

    fn slot_addr(&self, slot: usize) -> LineAddr {
        self.buffer_base.offset(slot as u64 * self.block_lines)
    }

    fn slot_of(&self, addr: LineAddr) -> usize {
        ((addr.0 - self.buffer_base.0) / self.block_lines) as usize
    }
}

impl Workload for Fio {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: self.name.clone(),
            kind: WorkloadKind::StorageIo,
            device: Some(self.device),
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let device = self.device;
        while ctx.has_budget() {
            // Keep the queue deep: one in-flight read per free slot.
            debug_assert_eq!(
                self.outstanding + self.free_slots.len(),
                self.queue_depth(),
                "every slot is either free or carries one in-flight read"
            );
            while let Some(slot) = self.free_slots.pop() {
                let cmd = NvmeCommand {
                    buffer: self.slot_addr(slot),
                    lines: self.block_lines,
                    op: NvmeOp::Read,
                };
                if ctx.nvme_mut(device).submit(cmd).is_err() {
                    self.free_slots.push(slot);
                    break; // device queue full
                }
                self.submitted_at[slot] = ctx.now();
                self.outstanding += 1;
                ctx.compute(SUBMIT_CYCLES, 60);
            }

            // Reap one of *our read* completions. The device may be
            // shared with other workloads (FFSB-H + FFSB-L), and FFSB's
            // periodic write-back targets a buffer *inside this range* —
            // filtering by direction as well as range is what keeps this
            // loop from reaping a completion it never submitted (the
            // historical double-reap that wrapped `outstanding`).
            let base = self.buffer_base;
            let span = self.buffer_lines();
            let Some(done) = ctx
                .nvme_mut(device)
                .pop_completion_in(base, span, NvmeOp::Read)
            else {
                ctx.compute(POLL_CYCLES, 10);
                continue;
            };
            self.outstanding = self
                .outstanding
                .checked_sub(1)
                .expect("reaped a read completion that was never submitted");
            let slot = self.slot_of(done.cmd.buffer);
            self.free_slots.push(slot);
            let read_ns = done
                .completed_at
                .saturating_sub(self.submitted_at[slot])
                .as_nanos();
            ctx.record_latency(LatencyKind::StorageRead, read_ns);

            let mut regex_cycles = 0.0;
            if self.touch_data {
                // One batched consumption run per block: each line
                // charges read cost + the regex pass, exactly like the
                // scalar read_io/compute pair did.
                ctx.read_io_run(
                    done.cmd.buffer,
                    done.cmd.lines,
                    REGEX_CYCLES_PER_LINE,
                    6,
                    &mut regex_cycles,
                );
            }
            let regex_ns = ctx.cycles_to_ns(regex_cycles);
            ctx.record_latency(LatencyKind::StorageRegex, regex_ns);
            ctx.record_latency(LatencyKind::StorageTotal, read_ns + regex_ns);
            ctx.add_ops(1);
            ctx.add_io_bytes(done.cmd.lines * LINE_BYTES);
            self.blocks_done += 1;
        }
    }

    /// Encoding: `[blocks_done, outstanding, free_len, free_slots...,
    /// submitted_at nanos...]` with `submitted_at` always `queue_depth`
    /// entries.
    fn ckpt_state(&self) -> Vec<u64> {
        let mut words = vec![
            self.blocks_done,
            self.outstanding as u64,
            self.free_slots.len() as u64,
        ];
        words.extend(self.free_slots.iter().map(|&s| s as u64));
        words.extend(self.submitted_at.iter().map(|t| t.as_nanos()));
        words
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        let slots = self.queue_depth();
        let [blocks_done, outstanding, free_len, rest @ ..] = state else {
            return false;
        };
        let free_len = *free_len as usize;
        if *outstanding as usize + free_len != slots
            || rest.len() != free_len + slots
            || rest[..free_len].iter().any(|&s| s as usize >= slots)
        {
            return false;
        }
        self.blocks_done = *blocks_done;
        self.outstanding = *outstanding as usize;
        self.free_slots = rest[..free_len].iter().map(|&s| s as usize).collect();
        self.submitted_at = rest[free_len..]
            .iter()
            .map(|&ns| SimTime::from_nanos(ns))
            .collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, PortId, Priority};
    use a4_pcie::NvmeConfig;
    use a4_sim::{System, SystemConfig};

    fn run_fio(block_lines: u64) -> (a4_sim::MonitorSample, a4_model::WorkloadId) {
        let mut sys = System::new(SystemConfig::small_test());
        let ssd = sys
            .attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        let mut fio = Fio::new(ssd, LineAddr(0), block_lines, 4, 2);
        let buf = sys.alloc_lines(fio.buffer_lines());
        fio.buffer_base = buf;
        let id = sys
            .add_workload(Box::new(fio), vec![CoreId(0), CoreId(1)], Priority::Low)
            .unwrap();
        sys.run_logical_seconds(2);
        sys.sample();
        sys.run_logical_seconds(2);
        (sys.sample(), id)
    }

    #[test]
    fn fio_completes_blocks() {
        let (s, id) = run_fio(16);
        let w = s.workload(id).unwrap();
        assert!(w.ops > 5, "blocks completed: {}", w.ops);
        assert!(w.io_bytes >= w.ops * 16 * 64);
        assert!(w.latency_of(LatencyKind::StorageRead).count > 0);
        assert!(w.latency_of(LatencyKind::StorageTotal).mean_ns > 0.0);
    }

    #[test]
    fn larger_blocks_same_throughput_fewer_ops() {
        let (s_small, id_s) = run_fio(8);
        let (s_large, id_l) = run_fio(64);
        let small = s_small.workload(id_s).unwrap();
        let large = s_large.workload(id_l).unwrap();
        // Small quanta leave both sizes IOPS-bound: command rates match,
        // so byte throughput scales with block size.
        assert!(
            small.ops >= large.ops,
            "small {} vs large {}",
            small.ops,
            large.ops
        );
        assert!(
            large.io_bytes > small.io_bytes,
            "large blocks move more bytes"
        );
    }

    #[test]
    fn geometry_helpers() {
        let fio = Fio::new(DeviceId(0), LineAddr(100), 32, 8, 4);
        assert_eq!(fio.queue_depth(), 32);
        assert_eq!(fio.buffer_lines(), 1024);
        assert_eq!(fio.slot_addr(2), LineAddr(164));
        assert_eq!(fio.slot_of(LineAddr(164)), 2);
        assert_eq!(fio.blocks_done(), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_rejected() {
        Fio::new(DeviceId(0), LineAddr(0), 0, 1, 1);
    }
}
