//! Redis server/client pair of Table 2 (YCSB workload A: update-heavy,
//! 50 % reads / 50 % updates, zipf-like key popularity).
//!
//! Both roles are single-core, cache-resident, non-I/O workloads in the
//! paper's setup (loopback transport); what matters for the LLC study is
//! their moderate, hot-skewed working set and their sensitivity to LLC
//! capacity.

use a4_model::{LineAddr, WorkloadKind};
use a4_sim::{CoreCtx, Workload, WorkloadInfo};

/// Fraction of operations that are updates (YCSB-A: 0.5).
const UPDATE_FRACTION: f64 = 0.5;
/// Fraction of accesses that go to the hot subset.
const HOT_FRACTION: f64 = 0.8;
/// The hot subset's share of the key space.
const HOT_SPACE: f64 = 0.2;
/// Request-handling compute per operation.
const OP_CYCLES: f64 = 220.0;
/// Lines touched per key-value operation (key + small value).
const LINES_PER_OP: u64 = 2;

/// Server or client role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisRole {
    /// Redis-S: the persistent key-value store.
    Server,
    /// Redis-C: the YCSB driver.
    Client,
}

/// One Redis process.
///
/// # Examples
///
/// ```
/// use a4_model::LineAddr;
/// use a4_sim::Workload;
/// use a4_workloads::{Redis, RedisRole};
///
/// let s = Redis::new(RedisRole::Server, LineAddr(0), 4096);
/// assert_eq!(s.info().name, "Redis-S");
/// ```
#[derive(Debug, Clone)]
pub struct Redis {
    role: RedisRole,
    base: LineAddr,
    ws_lines: u64,
}

impl Redis {
    /// Creates an instance with a `ws_lines`-line keyspace at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `ws_lines < 8` (the hot/cold split needs room).
    pub fn new(role: RedisRole, base: LineAddr, ws_lines: u64) -> Self {
        assert!(ws_lines >= 8, "redis working set too small");
        Redis {
            role,
            base,
            ws_lines,
        }
    }

    fn pick_line(&self, ctx: &mut CoreCtx<'_>) -> u64 {
        let hot_lines = ((self.ws_lines as f64) * HOT_SPACE) as u64;
        if ctx.rng_f64() < HOT_FRACTION && hot_lines > 0 {
            ctx.rng_range(hot_lines)
        } else {
            hot_lines + ctx.rng_range((self.ws_lines - hot_lines).max(1))
        }
    }
}

impl Workload for Redis {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: match self.role {
                RedisRole::Server => "Redis-S".into(),
                RedisRole::Client => "Redis-C".into(),
            },
            kind: WorkloadKind::NonIo,
            device: None,
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        while ctx.has_budget() {
            let line = self.pick_line(ctx);
            let addr = self.base.offset(line);
            let update = ctx.rng_f64() < UPDATE_FRACTION;
            for l in 0..LINES_PER_OP {
                let a = addr.offset(l * (self.ws_lines / LINES_PER_OP).max(1) % self.ws_lines);
                if update {
                    ctx.write(a);
                } else {
                    ctx.read(a);
                }
            }
            ctx.compute(OP_CYCLES, 150);
            ctx.add_ops(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, Priority};
    use a4_sim::{System, SystemConfig};

    #[test]
    fn server_and_client_run() {
        let mut sys = System::new(SystemConfig::small_test());
        let sbase = sys.alloc_lines(64);
        let cbase = sys.alloc_lines(64);
        let s = sys
            .add_workload(
                Box::new(Redis::new(RedisRole::Server, sbase, 64)),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        let c = sys
            .add_workload(
                Box::new(Redis::new(RedisRole::Client, cbase, 64)),
                vec![CoreId(1)],
                Priority::High,
            )
            .unwrap();
        sys.run_logical_seconds(2);
        let sample = sys.sample();
        let ws = sample.workload(s).unwrap();
        let wc = sample.workload(c).unwrap();
        assert_eq!(&*ws.name, "Redis-S");
        assert_eq!(&*wc.name, "Redis-C");
        assert!(ws.ops > 10);
        assert!(ws.ipc > 0.0);
        // Update-heavy: dirty lines get written back eventually.
        assert!(ws.accesses > 0);
    }

    #[test]
    fn hot_skew_gives_good_hit_rate() {
        let mut sys = System::new(SystemConfig::small_test());
        // Working set 4x the MLC, but 80% of traffic hits 20% of it
        // (12 lines), which fits the 32-line MLC.
        let base = sys.alloc_lines(64);
        let id = sys
            .add_workload(
                Box::new(Redis::new(RedisRole::Server, base, 64)),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        sys.run_logical_seconds(2);
        sys.sample();
        sys.run_logical_seconds(2);
        let sample = sys.sample();
        let w = sample.workload(id).unwrap();
        assert!(
            w.mlc_miss_rate < 0.6,
            "hot subset caches well: {}",
            w.mlc_miss_rate
        );
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn tiny_ws_rejected() {
        Redis::new(RedisRole::Server, LineAddr(0), 4);
    }
}
