//! Conversion between the paper's byte sizes and the scaled system.
//!
//! The simulated LLC keeps the real geometry (11 ways) but scales capacity
//! through the set count; every working set, ring and block size from the
//! paper scales by the same factor so that *relative* footprints (working
//! set vs. LLC ways vs. MLC) are preserved. See DESIGN.md §1.

use a4_cache::LlcGeometry;
use a4_model::{Bytes, LINE_BYTES};

/// Capacity of the paper's LLC (25 MiB, Table 1).
pub const PAPER_LLC_BYTES: u64 = 25 * 1024 * 1024;

/// The scale factor of a simulated geometry relative to the paper's LLC.
///
/// # Examples
///
/// ```
/// use a4_cache::LlcGeometry;
/// use a4_workloads::scale;
///
/// let geom = LlcGeometry::new(1024)?;
/// let s = scale::factor(geom);
/// assert!((s - 36.36).abs() < 0.1);
/// # Ok::<(), a4_model::A4Error>(())
/// ```
pub fn factor(geom: LlcGeometry) -> f64 {
    PAPER_LLC_BYTES as f64 / geom.capacity_bytes() as f64
}

/// Scales a byte size from the paper down to the simulated system,
/// rounding up to at least one line.
///
/// # Examples
///
/// ```
/// use a4_cache::LlcGeometry;
/// use a4_model::Bytes;
/// use a4_workloads::scale;
///
/// let geom = LlcGeometry::new(1024)?;
/// // The paper's 4 MB X-Mem working set ≈ 112 KiB scaled.
/// let ws = scale::bytes(Bytes::from_mib(4), geom);
/// assert!((110_000..=120_000).contains(&ws.as_u64()));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
pub fn bytes(paper: Bytes, geom: LlcGeometry) -> Bytes {
    let scaled = (paper.as_u64() as f64 / factor(geom)).ceil() as u64;
    Bytes::new(scaled.max(LINE_BYTES))
}

/// Scales a byte size to a line count (at least one line).
pub fn lines(paper: Bytes, geom: LlcGeometry) -> u64 {
    bytes(paper, geom).lines().max(1)
}

/// Lines covering `frac` of `ways` LLC ways — for working sets the paper
/// defines relative to the LLC ("smaller than two LLC ways").
///
/// # Panics
///
/// Panics if `frac` is not positive.
pub fn fraction_of_ways(geom: LlcGeometry, ways: usize, frac: f64) -> u64 {
    assert!(frac > 0.0, "fraction must be positive");
    ((geom.sets() * ways) as f64 * frac) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> LlcGeometry {
        LlcGeometry::new(1024).unwrap()
    }

    #[test]
    fn factor_matches_capacity_ratio() {
        let g = geom();
        assert!((factor(g) * g.capacity_bytes() as f64 - PAPER_LLC_BYTES as f64).abs() < 1.0);
    }

    #[test]
    fn paper_sizes_scale_sensibly() {
        let g = geom();
        // 4 MB X-Mem < 2 LLC ways (128 KiB) but > 2 MLCs (64 KiB).
        let xmem = bytes(Bytes::from_mib(4), g).as_u64();
        assert!(xmem < 2 * 1024 * 64);
        assert!(xmem > 2 * 32 * 1024);
        // 10 MB X-Mem 3 working set exceeds the whole scaled LLC.
        let xmem3 = bytes(Bytes::from_mib(10), g).as_u64();
        assert!(
            xmem3 < g.capacity_bytes() / 2,
            "10MB/36 = 280KiB < 704KiB LLC"
        );
    }

    #[test]
    fn minimum_is_one_line() {
        let g = geom();
        assert_eq!(lines(Bytes::new(1), g), 1);
        assert_eq!(bytes(Bytes::new(1), g).as_u64(), LINE_BYTES);
    }

    #[test]
    fn fraction_of_ways_counts_lines() {
        let g = geom();
        assert_eq!(fraction_of_ways(g, 2, 1.0), 2048);
        assert_eq!(fraction_of_ways(g, 2, 0.88), 1802);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_rejects_zero() {
        fraction_of_ways(geom(), 2, 0.0);
    }
}
