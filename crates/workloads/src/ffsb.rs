//! FFSB: the Flexible Filesystem Benchmark pair of Table 2.
//!
//! * **FFSB-H** (heavy): 2 MB I/O blocks on 3 CPU cores — the storage
//!   antagonist A4-c detects and strips of DCA;
//! * **FFSB-L** (light): 32 KB blocks on 1 core — storage I/O that A4
//!   correctly leaves alone in the LPW-heavy scenario.
//!
//! Both run the read-then-regex engine of [`crate::Fio`] plus a write
//! fraction (filesystem metadata/journal updates through the egress
//! path).

use crate::fio::Fio;
use a4_model::{DeviceId, LineAddr, WorkloadKind};
use a4_pcie::{NvmeCommand, NvmeOp};
use a4_sim::{CoreCtx, LatencyKind, Workload, WorkloadInfo};

/// Issue one write per this many reads.
const WRITE_PERIOD: u64 = 8;

/// An FFSB instance (heavy or light).
///
/// # Examples
///
/// ```
/// use a4_model::{DeviceId, LineAddr};
/// use a4_sim::Workload;
/// use a4_workloads::Ffsb;
///
/// let h = Ffsb::heavy(DeviceId(1), LineAddr(0), 896, 3);
/// assert_eq!(h.info().name, "FFSB-H");
/// let l = Ffsb::light(DeviceId(1), LineAddr(0x9000), 14);
/// assert_eq!(l.info().name, "FFSB-L");
/// ```
#[derive(Debug, Clone)]
pub struct Ffsb {
    engine: Fio,
    reads_since_write: u64,
    write_buffer: LineAddr,
    write_lines: u64,
    // Submit times of in-flight write-back commands, oldest first. The
    // write path reaps its own (write-direction) completions — the read
    // engine filters them out — and records real completion latency.
    write_submits: std::collections::VecDeque<a4_model::SimTime>,
}

impl Ffsb {
    /// FFSB-H: heavy storage I/O (paper: 2 MB blocks, 3 cores; pass the
    /// scaled block size in lines).
    pub fn heavy(device: DeviceId, buffer_base: LineAddr, block_lines: u64, cores: usize) -> Self {
        let engine = Fio::new(device, buffer_base, block_lines, 8, cores).with_name("FFSB-H");
        Ffsb {
            write_buffer: buffer_base,
            write_lines: block_lines,
            engine,
            reads_since_write: 0,
            write_submits: std::collections::VecDeque::new(),
        }
    }

    /// FFSB-L: light storage I/O (paper: 32 KB blocks, 1 core).
    pub fn light(device: DeviceId, buffer_base: LineAddr, block_lines: u64) -> Self {
        let engine = Fio::new(device, buffer_base, block_lines, 4, 1).with_name("FFSB-L");
        Ffsb {
            write_buffer: buffer_base,
            write_lines: block_lines,
            engine,
            reads_since_write: 0,
            write_submits: std::collections::VecDeque::new(),
        }
    }

    /// Lines of buffer address space needed.
    pub fn buffer_lines(&self) -> u64 {
        self.engine.buffer_lines()
    }

    /// Blocks read and processed since construction.
    pub fn blocks_done(&self) -> u64 {
        self.engine.blocks_done()
    }

    /// Read commands the engine believes in flight (see
    /// [`Fio::outstanding_commands`]).
    pub fn outstanding_commands(&self) -> usize {
        self.engine.outstanding_commands()
    }

    /// The engine's total queue depth.
    pub fn queue_depth(&self) -> usize {
        self.engine.queue_depth()
    }
}

impl Workload for Ffsb {
    fn info(&self) -> WorkloadInfo {
        let inner = self.engine.info();
        WorkloadInfo {
            name: inner.name,
            kind: WorkloadKind::StorageIo,
            device: inner.device,
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        // Periodic write-back of a block (journal/metadata flush).
        let before = self.engine.blocks_done();
        self.engine.step(ctx);
        let reads = self.engine.blocks_done() - before;
        self.reads_since_write += reads;
        let device = self.engine.info().device.expect("ffsb drives a device");
        if self.reads_since_write >= WRITE_PERIOD {
            self.reads_since_write = 0;
            let cmd = NvmeCommand {
                buffer: self.write_buffer,
                lines: self.write_lines,
                op: NvmeOp::Write,
            };
            if ctx.nvme_mut(device).submit(cmd).is_ok() {
                self.write_submits.push_back(ctx.now());
                ctx.compute(150.0, 70);
            }
        }
        // Reap completed write-backs (write-direction only: the read
        // engine's reads over the same buffer range are never ours) and
        // record their real submit-to-completion latency.
        while let Some(done) = ctx.nvme_mut(device).pop_completion_in(
            self.write_buffer,
            self.write_lines,
            NvmeOp::Write,
        ) {
            let submitted = self.write_submits.pop_front().unwrap_or(done.completed_at);
            ctx.record_latency(
                LatencyKind::StorageWrite,
                done.completed_at.saturating_sub(submitted).as_nanos() + 1,
            );
        }
    }

    /// Encoding: the read engine's words, then `[reads_since_write,
    /// write_submits.len(), write submit nanos...]`.
    fn ckpt_state(&self) -> Vec<u64> {
        let mut words = self.engine.ckpt_state();
        words.push(self.reads_since_write);
        words.push(self.write_submits.len() as u64);
        words.extend(self.write_submits.iter().map(|t| t.as_nanos()));
        words
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        // The engine prefix has a self-describing length: fixed header
        // plus its free list and submit stamps.
        let slots = self.engine.queue_depth();
        let Some(&free_len) = state.get(2) else {
            return false;
        };
        let engine_len = 3 + free_len as usize + slots;
        if state.len() < engine_len + 2 {
            return false;
        }
        let (engine_words, rest) = state.split_at(engine_len);
        let [reads_since_write, write_len, stamps @ ..] = rest else {
            return false;
        };
        if stamps.len() != *write_len as usize || !self.engine.restore_ckpt(engine_words) {
            return false;
        }
        self.reads_since_write = *reads_since_write;
        self.write_submits = stamps
            .iter()
            .map(|&ns| a4_model::SimTime::from_nanos(ns))
            .collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, PortId, Priority};
    use a4_pcie::NvmeConfig;
    use a4_sim::{System, SystemConfig};

    #[test]
    fn heavy_instance_reads_and_writes() {
        let mut sys = System::new(SystemConfig::small_test());
        let ssd = sys
            .attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        let mut ffsb = Ffsb::heavy(ssd, LineAddr(0), 32, 2);
        let buf = sys.alloc_lines(ffsb.buffer_lines());
        // Shallow queue so the periodic write reaches the head quickly.
        ffsb.engine = Fio::new(ssd, buf, 32, 2, 2).with_name("FFSB-H");
        ffsb.write_buffer = buf;
        let id = sys
            .add_workload(Box::new(ffsb), vec![CoreId(0), CoreId(1)], Priority::Low)
            .unwrap();
        sys.run_logical_seconds(8);
        let s = sys.sample();
        let w = s.workload(id).unwrap();
        assert!(
            w.ops > WRITE_PERIOD,
            "enough reads to trigger a write: {}",
            w.ops
        );
        assert!(
            w.latency_of(LatencyKind::StorageWrite).count > 0,
            "writes recorded"
        );
        let d = s.device(ssd).unwrap();
        assert!(d.dma_read_bytes > 0, "write commands DMA-read host buffers");
    }

    /// Regression bar for the historical fio double-reap: FFSB's
    /// periodic write-back lands *inside* the read engine's buffer
    /// range, and the range-only completion filter let the read path
    /// reap write completions it never submitted. In the shared-SSD
    /// colocations the resulting unmatched decrements walked
    /// `outstanding` to zero and wrapped it (fig13 lpw-heavy under
    /// A4-c/d), after which the engine never submitted again. This test
    /// drives the triggering shape — two FFSB instances sharing one SSD,
    /// write-backs interleaved with reads — and asserts the invariant
    /// the wrap violated after every single step, plus that write
    /// latencies now come from completions (≥ one quantum), not from the
    /// old submit-side stamp (~1 ns).
    #[test]
    fn outstanding_never_exceeds_queue_depth_on_a_shared_ssd() {
        #[derive(Debug)]
        struct Probe(Ffsb);
        impl Workload for Probe {
            fn info(&self) -> super::WorkloadInfo {
                self.0.info()
            }
            fn step(&mut self, ctx: &mut CoreCtx<'_>) {
                self.0.step(ctx);
                assert!(
                    self.0.outstanding_commands() <= self.0.queue_depth(),
                    "double-reap regression: {} believes {} commands in flight \
                     against queue depth {}",
                    self.0.info().name,
                    self.0.outstanding_commands(),
                    self.0.queue_depth()
                );
            }
        }

        let mut sys = System::new(SystemConfig::small_test());
        // A shallow device queue (less than the combined demand of both
        // instances plus their write-backs) keeps submissions failing
        // intermittently — the backlog regime the historical wrap needed.
        let ssd = sys
            .attach_nvme(
                PortId(0),
                a4_pcie::NvmeConfig {
                    queue_slots: 24,
                    ..a4_pcie::NvmeConfig::raid0_980pro_x4()
                },
            )
            .unwrap();
        let probe_h = Ffsb::heavy(ssd, LineAddr(0), 32, 2);
        let buf_h = sys.alloc_lines(probe_h.buffer_lines());
        let h = Ffsb::heavy(ssd, buf_h, 32, 2);
        let probe_l = Ffsb::light(ssd, LineAddr(0), 8);
        let buf_l = sys.alloc_lines(probe_l.buffer_lines());
        let l = Ffsb::light(ssd, buf_l, 8);
        sys.add_workload(
            Box::new(Probe(h)),
            vec![CoreId(0), CoreId(1)],
            Priority::Low,
        )
        .unwrap();
        let lid = sys
            .add_workload(Box::new(Probe(l)), vec![CoreId(2)], Priority::High)
            .unwrap();
        sys.run_logical_seconds(40);
        let s = sys.sample();
        // Both instances completed reads (a wrapped engine would have
        // stopped submitting forever; FFSB-L may still be *starved* by
        // the 12-slot device queue — that is backpressure, not the bug).
        for w in &s.workloads {
            assert!(w.ops > 0, "{} completes blocks over 40s", w.name);
        }
        // Write latency is completion-derived now: at least one quantum
        // (1 µs), where the submit-side stamp was ~1 ns.
        let wl = s.workload(lid).unwrap();
        let writes = wl.latency_of(LatencyKind::StorageWrite);
        assert!(writes.count > 0, "write-backs completed and were reaped");
        assert!(
            writes.mean_ns >= 1_000.0,
            "write latency comes from completions, got {} ns",
            writes.mean_ns
        );
    }

    #[test]
    fn names_distinguish_variants() {
        let h = Ffsb::heavy(DeviceId(0), LineAddr(0), 10, 3);
        let l = Ffsb::light(DeviceId(0), LineAddr(0), 10);
        assert_eq!(h.info().name, "FFSB-H");
        assert_eq!(l.info().name, "FFSB-L");
        assert_eq!(h.info().kind, WorkloadKind::StorageIo);
        assert!(h.buffer_lines() > l.buffer_lines());
    }
}
