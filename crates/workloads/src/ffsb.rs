//! FFSB: the Flexible Filesystem Benchmark pair of Table 2.
//!
//! * **FFSB-H** (heavy): 2 MB I/O blocks on 3 CPU cores — the storage
//!   antagonist A4-c detects and strips of DCA;
//! * **FFSB-L** (light): 32 KB blocks on 1 core — storage I/O that A4
//!   correctly leaves alone in the LPW-heavy scenario.
//!
//! Both run the read-then-regex engine of [`crate::Fio`] plus a write
//! fraction (filesystem metadata/journal updates through the egress
//! path).

use crate::fio::Fio;
use a4_model::{DeviceId, LineAddr, WorkloadKind};
use a4_pcie::{NvmeCommand, NvmeOp};
use a4_sim::{CoreCtx, LatencyKind, Workload, WorkloadInfo};

/// Issue one write per this many reads.
const WRITE_PERIOD: u64 = 8;

/// An FFSB instance (heavy or light).
///
/// # Examples
///
/// ```
/// use a4_model::{DeviceId, LineAddr};
/// use a4_sim::Workload;
/// use a4_workloads::Ffsb;
///
/// let h = Ffsb::heavy(DeviceId(1), LineAddr(0), 896, 3);
/// assert_eq!(h.info().name, "FFSB-H");
/// let l = Ffsb::light(DeviceId(1), LineAddr(0x9000), 14);
/// assert_eq!(l.info().name, "FFSB-L");
/// ```
#[derive(Debug, Clone)]
pub struct Ffsb {
    engine: Fio,
    reads_since_write: u64,
    write_buffer: LineAddr,
    write_lines: u64,
}

impl Ffsb {
    /// FFSB-H: heavy storage I/O (paper: 2 MB blocks, 3 cores; pass the
    /// scaled block size in lines).
    pub fn heavy(device: DeviceId, buffer_base: LineAddr, block_lines: u64, cores: usize) -> Self {
        let engine = Fio::new(device, buffer_base, block_lines, 8, cores).with_name("FFSB-H");
        Ffsb {
            write_buffer: buffer_base,
            write_lines: block_lines,
            engine,
            reads_since_write: 0,
        }
    }

    /// FFSB-L: light storage I/O (paper: 32 KB blocks, 1 core).
    pub fn light(device: DeviceId, buffer_base: LineAddr, block_lines: u64) -> Self {
        let engine = Fio::new(device, buffer_base, block_lines, 4, 1).with_name("FFSB-L");
        Ffsb {
            write_buffer: buffer_base,
            write_lines: block_lines,
            engine,
            reads_since_write: 0,
        }
    }

    /// Lines of buffer address space needed.
    pub fn buffer_lines(&self) -> u64 {
        self.engine.buffer_lines()
    }

    /// Blocks read and processed since construction.
    pub fn blocks_done(&self) -> u64 {
        self.engine.blocks_done()
    }
}

impl Workload for Ffsb {
    fn info(&self) -> WorkloadInfo {
        let inner = self.engine.info();
        WorkloadInfo {
            name: inner.name,
            kind: WorkloadKind::StorageIo,
            device: inner.device,
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        // Periodic write-back of a block (journal/metadata flush).
        let before = self.engine.blocks_done();
        self.engine.step(ctx);
        let reads = self.engine.blocks_done() - before;
        self.reads_since_write += reads;
        if self.reads_since_write >= WRITE_PERIOD {
            self.reads_since_write = 0;
            let device = self.engine.info().device.expect("ffsb drives a device");
            let cmd = NvmeCommand {
                buffer: self.write_buffer,
                lines: self.write_lines,
                op: NvmeOp::Write,
            };
            let submit = ctx.now();
            if ctx.nvme_mut(device).submit(cmd).is_ok() {
                ctx.compute(150.0, 70);
                ctx.record_latency(
                    LatencyKind::StorageWrite,
                    ctx.now().saturating_sub(submit).as_nanos() + 1,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, PortId, Priority};
    use a4_pcie::NvmeConfig;
    use a4_sim::{System, SystemConfig};

    #[test]
    fn heavy_instance_reads_and_writes() {
        let mut sys = System::new(SystemConfig::small_test());
        let ssd = sys
            .attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        let mut ffsb = Ffsb::heavy(ssd, LineAddr(0), 32, 2);
        let buf = sys.alloc_lines(ffsb.buffer_lines());
        // Shallow queue so the periodic write reaches the head quickly.
        ffsb.engine = Fio::new(ssd, buf, 32, 2, 2).with_name("FFSB-H");
        ffsb.write_buffer = buf;
        let id = sys
            .add_workload(Box::new(ffsb), vec![CoreId(0), CoreId(1)], Priority::Low)
            .unwrap();
        sys.run_logical_seconds(8);
        let s = sys.sample();
        let w = s.workload(id).unwrap();
        assert!(
            w.ops > WRITE_PERIOD,
            "enough reads to trigger a write: {}",
            w.ops
        );
        assert!(
            w.latency_of(LatencyKind::StorageWrite).count > 0,
            "writes recorded"
        );
        let d = s.device(ssd).unwrap();
        assert!(d.dma_read_bytes > 0, "write commands DMA-read host buffers");
    }

    #[test]
    fn names_distinguish_variants() {
        let h = Ffsb::heavy(DeviceId(0), LineAddr(0), 10, 3);
        let l = Ffsb::light(DeviceId(0), LineAddr(0), 10);
        assert_eq!(h.info().name, "FFSB-H");
        assert_eq!(l.info().name, "FFSB-L");
        assert_eq!(h.info().kind, WorkloadKind::StorageIo);
        assert!(h.buffer_lines() > l.buffer_lines());
    }
}
