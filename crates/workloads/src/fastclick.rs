//! Fastclick: the real-world network workload of Table 2 — simple packet
//! processing at 100 Gbps with 1024-byte packets and a 2048-entry ring
//! per core. Unlike the drop-only DPDK microbenchmarks it *forwards*
//! packets: touch every payload line, rewrite the header, then Tx the
//! packet back out (egress DMA read).

use a4_model::{DeviceId, WorkloadKind, LINE_BYTES};
use a4_sim::{CoreCtx, LatencyKind, Workload, WorkloadInfo};

/// Per-packet processing beyond memory accesses (classification, route
/// lookup, rewrite). Calibrated like DPDK-T's cost (see `dpdk.rs`) for a
/// moderately loaded forwarding plane.
const PROCESS_CYCLES: f64 = 300.0;
/// Cycles burnt by one empty poll.
const POLL_CYCLES: f64 = 40.0;

/// A Fastclick forwarding instance.
///
/// # Examples
///
/// ```
/// use a4_model::DeviceId;
/// use a4_sim::Workload;
/// use a4_workloads::Fastclick;
///
/// let fc = Fastclick::new(DeviceId(0));
/// assert_eq!(fc.info().name, "Fastclick");
/// ```
#[derive(Debug, Clone)]
pub struct Fastclick {
    device: DeviceId,
    forwarded: u64,
}

impl Fastclick {
    /// Creates an instance bound to `device`.
    pub fn new(device: DeviceId) -> Self {
        Fastclick {
            device,
            forwarded: 0,
        }
    }

    /// Packets forwarded since construction.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Workload for Fastclick {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "Fastclick".into(),
            kind: WorkloadKind::NetworkIo,
            device: Some(self.device),
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let ring = ctx.core_slot();
        let device = self.device;
        while ctx.has_budget() {
            let Some(pkt) = ctx.nic_mut(device).rx_pop(ring) else {
                ctx.compute(POLL_CYCLES, 8);
                continue;
            };
            let queue_ns = ctx.now().saturating_sub(pkt.written_at).as_nanos();
            let (_, desc_cost) = ctx.read_io(pkt.desc);
            let pointer_ns = ctx.cycles_to_ns(desc_cost);

            // Touch the payload (one batched run), rewrite the header line.
            let mut process_cycles = PROCESS_CYCLES;
            ctx.read_io_run(pkt.payload, pkt.payload_lines, 0.0, 0, &mut process_cycles);
            let (_, wc) = ctx.write(pkt.payload);
            process_cycles += wc;
            ctx.compute(PROCESS_CYCLES, 90);

            // Forward: egress DMA read of the payload.
            ctx.nic_tx(device, pkt.payload, pkt.payload_lines);

            let process_ns = ctx.cycles_to_ns(process_cycles);
            ctx.record_latency(LatencyKind::NetQueue, queue_ns);
            ctx.record_latency(LatencyKind::NetPointer, pointer_ns);
            ctx.record_latency(LatencyKind::NetProcess, process_ns);
            ctx.record_latency(LatencyKind::NetTotal, queue_ns + pointer_ns + process_ns);
            ctx.add_ops(1);
            ctx.add_io_bytes(pkt.payload_lines * LINE_BYTES);
            self.forwarded += 1;
        }
    }

    fn ckpt_state(&self) -> Vec<u64> {
        vec![self.forwarded]
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        match state {
            [forwarded] => {
                self.forwarded = *forwarded;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, PortId, Priority};
    use a4_pcie::NicConfig;
    use a4_sim::{System, SystemConfig};

    #[test]
    fn forwards_packets_with_egress_traffic() {
        let mut sys = System::new(SystemConfig::small_test());
        let nic = sys
            .attach_nic(PortId(0), NicConfig::connectx6_100g(2, 16, 1024))
            .unwrap();
        let id = sys
            .add_workload(
                Box::new(Fastclick::new(nic)),
                vec![CoreId(0), CoreId(1)],
                Priority::High,
            )
            .unwrap();
        sys.run_logical_seconds(2);
        let s = sys.sample();
        let w = s.workload(id).unwrap();
        assert!(w.ops > 10, "forwarded {}", w.ops);
        // Egress: the NIC DMA-read the forwarded payloads.
        let d = s.device(nic).unwrap();
        assert!(d.dma_read_bytes > 0, "tx path exercised");
        assert!(w.latency_of(LatencyKind::NetTotal).count > 0);
    }

    #[test]
    fn egress_volume_matches_forwarded_packets() {
        let mut sys = System::new(SystemConfig::small_test());
        let nic = sys
            .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 16, 1024))
            .unwrap();
        let id = sys
            .add_workload(
                Box::new(Fastclick::new(nic)),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        sys.run_logical_seconds(2);
        let s = sys.sample();
        let w = s.workload(id).unwrap();
        let d = s.device(nic).unwrap();
        // Every forwarded packet Tx-DMAs exactly its payload lines.
        assert_eq!(d.dma_read_bytes, w.ops * 16 * 64);
    }
}
