//! SPEC CPU2017-like synthetic workloads.
//!
//! The paper runs SPECrate benchmarks with reference inputs, one core
//! each (Table 2), and leans on the memory-centric characterization of
//! Singh & Awasthi ("Memory centric characterization ... of SPEC
//! CPU2017", ICPE 2019) for their cache sensitivity: x264 saturates at
//! small cache sizes, parest/xalancbmk keep benefiting from more cache,
//! and lbm/bwaves/fotonik3d/mcf stream through working sets far beyond
//! the LLC — the *non-I/O antagonists* that A4's T5 threshold catches.
//!
//! Each profile is a (working set, locality mix, compute density, write
//! fraction) tuple; working sets are expressed as fractions of the scaled
//! LLC so the geometry carries the paper's relative sizes.

use a4_cache::LlcGeometry;
use a4_model::{LineAddr, WorkloadKind};
use a4_sim::{CoreCtx, Workload, WorkloadInfo};

/// Cache-behaviour profile of one SPEC benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name as shown in the paper's figures.
    pub name: &'static str,
    /// Working set as a multiple of the LLC capacity.
    pub ws_llc_fraction: f64,
    /// Fraction of accesses with spatial locality (stride-1 runs).
    pub sequential_fraction: f64,
    /// Fraction of accesses targeting the hot 10 % of the working set.
    pub hot_fraction: f64,
    /// Pure-compute cycles between memory accesses.
    pub compute_cycles: f64,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
}

impl SpecProfile {
    /// All profiles used in the paper's Fig. 13 scenarios.
    pub fn all() -> &'static [SpecProfile] {
        PROFILES
    }

    /// Looks a profile up by name.
    ///
    /// # Examples
    ///
    /// ```
    /// use a4_workloads::SpecProfile;
    /// assert!(SpecProfile::by_name("lbm").is_some());
    /// assert!(SpecProfile::by_name("nonesuch").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<&'static SpecProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// True if the profile is a streaming antagonist (working set beyond
    /// the LLC with poor locality) — what A4's T5 detection should flag.
    pub fn is_streaming_antagonist(&self) -> bool {
        self.ws_llc_fraction >= 1.0 && self.hot_fraction < 0.3
    }
}

const PROFILES: &[SpecProfile] = &[
    // Cache-friendly, saturates early (Singh & Awasthi: x264 plateaus).
    SpecProfile {
        name: "x264",
        ws_llc_fraction: 0.08,
        sequential_fraction: 0.7,
        hot_fraction: 0.6,
        compute_cycles: 18.0,
        write_fraction: 0.3,
    },
    // Steadily benefits from more cache.
    SpecProfile {
        name: "parest",
        ws_llc_fraction: 0.45,
        sequential_fraction: 0.5,
        hot_fraction: 0.45,
        compute_cycles: 8.0,
        write_fraction: 0.2,
    },
    SpecProfile {
        name: "xalancbmk",
        ws_llc_fraction: 0.55,
        sequential_fraction: 0.3,
        hot_fraction: 0.5,
        compute_cycles: 7.0,
        write_fraction: 0.15,
    },
    // Compute-bound, tiny working set.
    SpecProfile {
        name: "exchange2",
        ws_llc_fraction: 0.01,
        sequential_fraction: 0.9,
        hot_fraction: 0.9,
        compute_cycles: 30.0,
        write_fraction: 0.1,
    },
    // Medium pointer-chasing footprint.
    SpecProfile {
        name: "omnetpp",
        ws_llc_fraction: 0.7,
        sequential_fraction: 0.2,
        hot_fraction: 0.4,
        compute_cycles: 6.0,
        write_fraction: 0.25,
    },
    SpecProfile {
        name: "blender",
        ws_llc_fraction: 0.5,
        sequential_fraction: 0.6,
        hot_fraction: 0.5,
        compute_cycles: 12.0,
        write_fraction: 0.2,
    },
    // Streaming antagonists: working sets beyond the LLC, poor locality.
    SpecProfile {
        name: "lbm",
        ws_llc_fraction: 2.5,
        sequential_fraction: 0.8,
        hot_fraction: 0.05,
        compute_cycles: 4.0,
        write_fraction: 0.45,
    },
    SpecProfile {
        name: "bwaves",
        ws_llc_fraction: 2.2,
        sequential_fraction: 0.7,
        hot_fraction: 0.05,
        compute_cycles: 4.0,
        write_fraction: 0.2,
    },
    SpecProfile {
        name: "fotonik3d",
        ws_llc_fraction: 2.0,
        sequential_fraction: 0.7,
        hot_fraction: 0.05,
        compute_cycles: 4.0,
        write_fraction: 0.25,
    },
    SpecProfile {
        name: "mcf",
        ws_llc_fraction: 1.8,
        sequential_fraction: 0.2,
        hot_fraction: 0.15,
        compute_cycles: 5.0,
        write_fraction: 0.2,
    },
];

/// A running SPEC-like synthetic.
///
/// # Examples
///
/// ```
/// use a4_cache::LlcGeometry;
/// use a4_model::LineAddr;
/// use a4_sim::Workload;
/// use a4_workloads::SpecCpu;
///
/// let geom = LlcGeometry::new(1024)?;
/// let lbm = SpecCpu::from_profile("lbm", LineAddr(0x10000), geom).unwrap();
/// assert_eq!(lbm.info().name, "lbm");
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpecCpu {
    profile: SpecProfile,
    base: LineAddr,
    ws_lines: u64,
    cursor: u64,
    run_left: u64,
}

impl SpecCpu {
    /// Instantiates a profile by name, sizing the working set from the
    /// LLC geometry. Returns `None` for unknown names.
    pub fn from_profile(name: &str, base: LineAddr, geom: LlcGeometry) -> Option<Self> {
        let profile = *SpecProfile::by_name(name)?;
        let llc_lines = (geom.capacity_bytes() / a4_model::LINE_BYTES) as f64;
        let ws_lines = ((llc_lines * profile.ws_llc_fraction) as u64).max(16);
        Some(SpecCpu {
            profile,
            base,
            ws_lines,
            cursor: 0,
            run_left: 0,
        })
    }

    /// The profile in use.
    pub fn profile(&self) -> &SpecProfile {
        &self.profile
    }

    /// Working-set lines the instance needs allocated.
    pub fn ws_lines(&self) -> u64 {
        self.ws_lines
    }
}

impl Workload for SpecCpu {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: self.profile.name.into(),
            kind: WorkloadKind::NonIo,
            device: None,
        }
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let hot_lines = ((self.ws_lines as f64) * 0.1).max(1.0) as u64;
        while ctx.has_budget() {
            if self.run_left == 0 {
                // Start a new access run: hot, sequential or random.
                if ctx.rng_f64() < self.profile.hot_fraction {
                    self.cursor = ctx.rng_range(hot_lines);
                    self.run_left = 4;
                } else if ctx.rng_f64() < self.profile.sequential_fraction {
                    self.cursor = ctx.rng_range(self.ws_lines);
                    self.run_left = 16;
                } else {
                    self.cursor = ctx.rng_range(self.ws_lines);
                    self.run_left = 1;
                }
            }
            let addr = self.base.offset(self.cursor % self.ws_lines);
            if ctx.rng_f64() < self.profile.write_fraction {
                ctx.write(addr);
            } else {
                ctx.read(addr);
            }
            ctx.compute(
                self.profile.compute_cycles,
                self.profile.compute_cycles as u64 / 2 + 2,
            );
            self.cursor += 1;
            self.run_left -= 1;
            ctx.add_ops(1);
        }
    }

    /// Encoding: `[cursor, run_left]`.
    fn ckpt_state(&self) -> Vec<u64> {
        vec![self.cursor, self.run_left]
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        match state {
            [cursor, run_left] => {
                self.cursor = *cursor;
                self.run_left = *run_left;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, Priority};
    use a4_sim::{System, SystemConfig};

    #[test]
    fn profiles_cover_the_papers_benchmarks() {
        for name in [
            "x264",
            "parest",
            "xalancbmk",
            "lbm",
            "omnetpp",
            "exchange2",
            "bwaves",
            "mcf",
            "blender",
            "fotonik3d",
        ] {
            assert!(SpecProfile::by_name(name).is_some(), "{name} missing");
        }
        assert_eq!(SpecProfile::all().len(), 10);
    }

    #[test]
    fn antagonist_classification_matches_the_paper() {
        // Fig. 13: bwaves, lbm, fotonik3d are flagged; x264, parest are not.
        assert!(SpecProfile::by_name("lbm")
            .unwrap()
            .is_streaming_antagonist());
        assert!(SpecProfile::by_name("bwaves")
            .unwrap()
            .is_streaming_antagonist());
        assert!(SpecProfile::by_name("fotonik3d")
            .unwrap()
            .is_streaming_antagonist());
        assert!(!SpecProfile::by_name("x264")
            .unwrap()
            .is_streaming_antagonist());
        assert!(!SpecProfile::by_name("parest")
            .unwrap()
            .is_streaming_antagonist());
        assert!(!SpecProfile::by_name("omnetpp")
            .unwrap()
            .is_streaming_antagonist());
    }

    fn miss_rates(name: &str) -> (f64, f64) {
        let mut sys = System::new(SystemConfig::small_test());
        let geom = sys.config().hierarchy.llc;
        let probe = SpecCpu::from_profile(name, LineAddr(0), geom).unwrap();
        let base = sys.alloc_lines(probe.ws_lines());
        let wl = SpecCpu::from_profile(name, base, geom).unwrap();
        let id = sys
            .add_workload(Box::new(wl), vec![CoreId(0)], Priority::Low)
            .unwrap();
        sys.run_logical_seconds(2);
        sys.sample();
        sys.run_logical_seconds(3);
        let s = sys.sample();
        let w = s.workload(id).unwrap();
        (w.mlc_miss_rate, w.llc_miss_rate)
    }

    #[test]
    fn streaming_antagonists_miss_everywhere() {
        let (mlc, llc) = miss_rates("lbm");
        assert!(mlc > 0.3, "lbm MLC miss rate {mlc}");
        assert!(llc > 0.35, "lbm LLC miss rate {llc}");
    }

    #[test]
    fn compute_bound_benchmarks_cache_well() {
        let (mlc, _) = miss_rates("exchange2");
        assert!(mlc < 0.2, "exchange2 MLC miss rate {mlc}");
    }

    #[test]
    fn unknown_profile_returns_none() {
        let geom = LlcGeometry::new(1024).unwrap();
        assert!(SpecCpu::from_profile("doom3", LineAddr(0), geom).is_none());
    }
}
