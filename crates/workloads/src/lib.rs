//! Workload generators for the A4 reproduction.
//!
//! Each type reproduces the cache/I-O footprint of a workload from the
//! paper's evaluation (§3, §6, Tables 2–3):
//!
//! * [`Dpdk`] — the DPDK-T / DPDK-NT microbenchmarks: poll the NIC Rx
//!   rings, optionally *touch* every payload line, drop the packet.
//! * [`Fio`] — the Flexible I/O Tester with `libaio`-style queue depth,
//!   `O_DIRECT` random reads and a regex pass over each block.
//! * [`XMem`] — the three X-Mem instances of Table 3 (sequential read /
//!   sequential write / random read with an LLC-exceeding working set).
//! * [`Fastclick`] — the real-world network workload: touch, process and
//!   forward (Tx) packets.
//! * [`Ffsb`] — FFSB-H / FFSB-L storage workloads (heavy 2 MB / light
//!   32 KB blocks plus regex).
//! * [`Redis`] — the YCSB-A update-heavy in-memory KV pair (server and
//!   client roles).
//! * [`SpecCpu`] — SPEC CPU2017-like synthetics parameterized by the
//!   published cache-sensitivity profiles (x264, parest, xalancbmk, lbm,
//!   omnetpp, exchange2, bwaves, mcf, blender, fotonik3d).
//!
//! Working-set sizes are given in *lines of the scaled system*; the
//! [`scale`] module converts the paper's byte sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dpdk;
mod fastclick;
mod ffsb;
mod fio;
mod redis;
pub mod scale;
mod spec;
mod xmem;

pub use dpdk::Dpdk;
pub use fastclick::Fastclick;
pub use ffsb::Ffsb;
pub use fio::Fio;
pub use redis::{Redis, RedisRole};
pub use spec::{SpecCpu, SpecProfile};
pub use xmem::{AccessOp, AccessPattern, XMem};
