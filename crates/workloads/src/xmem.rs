//! X-Mem: the cache-sensitive microbenchmark (Microsoft X-Mem in the
//! paper, Table 3).

use a4_model::{LineAddr, WorkloadKind};
use a4_sim::{CoreCtx, Workload, WorkloadInfo};

/// Memory access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Stride-1 sweep over the working set.
    Sequential,
    /// Uniform random within the working set.
    Random,
}

/// Memory operation type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// Loads.
    Read,
    /// Stores.
    Write,
}

/// One X-Mem instance.
///
/// Table 3 of the paper:
///
/// | instance | working set | pattern | op |
/// |---|---|---|---|
/// | X-Mem 1 | 4 MB | sequential | read |
/// | X-Mem 2 | 4 MB | sequential | write |
/// | X-Mem 3 | 10 MB | random | read |
///
/// # Examples
///
/// ```
/// use a4_model::LineAddr;
/// use a4_sim::Workload;
/// use a4_workloads::XMem;
///
/// let wl = XMem::instance_1(LineAddr(0x4000), 1802);
/// assert_eq!(wl.info().name, "X-Mem 1");
/// ```
#[derive(Debug, Clone)]
pub struct XMem {
    name: String,
    base: LineAddr,
    ws_lines: u64,
    pattern: AccessPattern,
    op: AccessOp,
    cursor: u64,
    compute_cycles: f64,
}

impl XMem {
    /// Creates an X-Mem with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ws_lines` is zero.
    pub fn new(
        name: impl Into<String>,
        base: LineAddr,
        ws_lines: u64,
        pattern: AccessPattern,
        op: AccessOp,
    ) -> Self {
        assert!(ws_lines > 0, "working set must be nonzero");
        XMem {
            name: name.into(),
            base,
            ws_lines,
            pattern,
            op,
            cursor: 0,
            compute_cycles: 4.0,
        }
    }

    /// X-Mem 1: sequential read (paper: 4 MB working set).
    pub fn instance_1(base: LineAddr, ws_lines: u64) -> Self {
        Self::new(
            "X-Mem 1",
            base,
            ws_lines,
            AccessPattern::Sequential,
            AccessOp::Read,
        )
    }

    /// X-Mem 2: sequential write (paper: 4 MB working set).
    pub fn instance_2(base: LineAddr, ws_lines: u64) -> Self {
        Self::new(
            "X-Mem 2",
            base,
            ws_lines,
            AccessPattern::Sequential,
            AccessOp::Write,
        )
    }

    /// X-Mem 3: random read with an LLC-pressure working set (paper:
    /// 10 MB).
    pub fn instance_3(base: LineAddr, ws_lines: u64) -> Self {
        Self::new(
            "X-Mem 3",
            base,
            ws_lines,
            AccessPattern::Random,
            AccessOp::Read,
        )
    }

    /// Working set size in lines.
    pub fn ws_lines(&self) -> u64 {
        self.ws_lines
    }
}

impl Workload for XMem {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: self.name.clone(),
            kind: WorkloadKind::NonIo,
            device: None,
        }
    }

    /// Phase flips double/restore the working set — the "execution phase
    /// change" stimulus for the controller's §5.6 paths.
    fn set_phase(&mut self, phase: usize) {
        let base_ws = self.ws_lines.max(2);
        self.ws_lines = if phase % 2 == 1 {
            base_ws * 2
        } else {
            (base_ws / 2).max(1)
        };
    }

    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        match self.pattern {
            // Sequential sweeps are contiguous line runs up to the
            // working-set wrap point: stream them through the batched
            // budget-capped run paths (each processed line charges the
            // same read-plus-compute the scalar loop did).
            AccessPattern::Sequential => {
                while ctx.has_budget() {
                    let idx = self.cursor % self.ws_lines;
                    let run = self.ws_lines - idx;
                    let base = self.base.offset(idx);
                    let done = match self.op {
                        AccessOp::Read => ctx.read_run(base, run, self.compute_cycles, 3, 1),
                        AccessOp::Write => ctx.write_run(base, run, self.compute_cycles, 3, 1),
                    };
                    self.cursor += done;
                }
            }
            AccessPattern::Random => {
                while ctx.has_budget() {
                    let addr = self.base.offset(ctx.rng_range(self.ws_lines));
                    match self.op {
                        AccessOp::Read => ctx.read(addr),
                        AccessOp::Write => ctx.write(addr),
                    };
                    ctx.compute(self.compute_cycles, 3);
                    ctx.add_ops(1);
                }
            }
        }
    }

    /// Encoding: `[cursor, ws_lines]` — `ws_lines` is mutable state
    /// because [`Workload::set_phase`] rescales it.
    fn ckpt_state(&self) -> Vec<u64> {
        vec![self.cursor, self.ws_lines]
    }

    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        match state {
            [cursor, ws_lines] if *ws_lines > 0 => {
                self.cursor = *cursor;
                self.ws_lines = *ws_lines;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, Priority};
    use a4_sim::{System, SystemConfig};

    fn run(ws_lines: u64, pattern: AccessPattern) -> f64 {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(ws_lines);
        let wl = sys
            .add_workload(
                Box::new(XMem::new("x", base, ws_lines, pattern, AccessOp::Read)),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        sys.run_logical_seconds(2);
        sys.sample(); // discard warmup
        sys.run_logical_seconds(2);
        let s = sys.sample();
        s.workload(wl).unwrap().mlc_miss_rate
    }

    #[test]
    fn small_ws_fits_mlc() {
        // small_test MLC = 8 sets x 4 ways = 32 lines.
        assert!(run(16, AccessPattern::Sequential) < 0.05);
    }

    #[test]
    fn llc_sized_ws_misses_mlc() {
        // 64 lines exceed the 32-line MLC; sequential LRU sweep thrashes.
        assert!(run(64, AccessPattern::Sequential) > 0.5);
    }

    #[test]
    fn instances_have_paper_names() {
        assert_eq!(XMem::instance_1(LineAddr(0), 10).info().name, "X-Mem 1");
        assert_eq!(XMem::instance_2(LineAddr(0), 10).info().name, "X-Mem 2");
        assert_eq!(XMem::instance_3(LineAddr(0), 10).info().name, "X-Mem 3");
        assert_eq!(XMem::instance_3(LineAddr(0), 10).ws_lines(), 10);
    }

    #[test]
    fn write_instance_dirties_lines() {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(64);
        sys.add_workload(
            Box::new(XMem::instance_2(base, 64)),
            vec![CoreId(0)],
            Priority::Low,
        )
        .unwrap();
        sys.run_logical_seconds(2);
        let s = sys.sample();
        assert!(
            s.workloads[0].mem_write_bytes > 0,
            "dirty evictions write back"
        );
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn zero_ws_rejected() {
        XMem::instance_1(LineAddr(0), 0);
    }
}
