//! Quickstart: build the paper's §7.1 microbenchmark colocation, run it
//! under the Default baseline and under full A4, and print the
//! improvement of the cache-sensitive high-priority workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use a4::core::{A4Config, A4Controller, DefaultPolicy};
use a4::experiments::{scenario, RunOpts};

fn main() {
    let opts = RunOpts {
        warmup: 14,
        measure: 6,
        seed: 0xA4,
    };

    // Default model: everything shares the whole LLC.
    let mut harness = scenario::microbench_mix(opts);
    harness.attach_policy(Box::new(DefaultPolicy::new()));
    let default_report = harness.run(opts.warmup, opts.measure);

    // Full A4 (level D): zoning + DCA Zone + selective DCA off + trash ways.
    let mut harness = scenario::microbench_mix(opts);
    harness.attach_policy(Box::new(A4Controller::new(A4Config::default())));
    let a4_report = harness.run(opts.warmup, opts.measure);

    println!("workload           Default-IPC   A4-IPC   speedup   A4 LLC hit");
    for sample in &a4_report.samples[..1] {
        for w in &sample.workloads {
            let ipc_d = default_report.ipc(w.id);
            let ipc_a = a4_report.ipc(w.id);
            println!(
                "{:<18} {:>10.3} {:>8.3} {:>8.2}x {:>10.3}",
                w.name,
                ipc_d,
                ipc_a,
                ipc_a / ipc_d.max(1e-12),
                a4_report.llc_hit_rate(w.id),
            );
        }
    }
}
