//! Quickstart: build the paper's §7.1 microbenchmark colocation as one
//! declarative `ScenarioSpec`, run it under the Default baseline and
//! under full A4 (two sweep cells, executed in parallel), and print the
//! improvement of the cache-sensitive high-priority workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use a4::experiments::{RunOpts, ScenarioSpec, Scheme, SweepRunner};

fn main() {
    let opts = RunOpts {
        warmup: 14,
        measure: 6,
        seed: 0xA4,
    };

    // One spec, two schemes: Default (share everything) vs full A4
    // (zoning + DCA Zone + selective DCA off + trash ways).
    let specs: Vec<ScenarioSpec> = [Scheme::Default, Scheme::A4(a4::core::FeatureLevel::D)]
        .into_iter()
        .map(|scheme| ScenarioSpec::microbench(opts).with_scheme(scheme))
        .collect();
    let runs = SweepRunner::with_threads(2)
        .run_specs(&specs)
        .expect("static microbench layout");
    let (default_run, a4_run) = (&runs[0], &runs[1]);

    println!("workload           Default-IPC   A4-IPC   speedup   A4 LLC hit");
    for binding in &a4_run.workloads {
        let ipc_d = default_run.ipc(&binding.role);
        let ipc_a = a4_run.ipc(&binding.role);
        println!(
            "{:<18} {:>10.3} {:>8.3} {:>8.2}x {:>10.3}",
            binding.role,
            ipc_d,
            ipc_a,
            ipc_a / ipc_d.max(1e-12),
            a4_run.llc_hit_rate(&binding.role),
        );
    }
}
