//! Storage noisy neighbor: a latency-critical DPDK-T service shares the
//! server with a FIO tenant doing large-block reads. Watch the hidden
//! per-port DCA knob ([SSD-DCA off]) remove the interference without
//! costing the tenant anything — the paper's observation O4 / Fig. 8a.
//!
//! The whole block-size × DCA grid is described declaratively with
//! `Sweep` + `ScenarioSpec` and executed in parallel.
//!
//! ```text
//! cargo run --release --example storage_noisy_neighbor
//! ```

use a4::experiments::{RunOpts, ScenarioSpec, Sweep, SweepRunner, WorkloadSpec};
use a4::model::{Priority, WayMask};
use a4::sim::LatencyKind;

const BLOCKS: [u64; 4] = [64, 128, 256, 512];
const DCA: [bool; 2] = [true, false];

fn spec(block_kib: u64, ssd_dca: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        format!("noisy-neighbor {block_kib}KB dca={ssd_dca}"),
        RunOpts::paper(),
    )
    .with_nic(4, 1024)
    .with_ssd()
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_workload(
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib,
        },
        &[4, 5, 6, 7],
        Priority::Low,
    )
    .with_cat(
        1,
        WayMask::from_paper_range(4, 5).expect("static"),
        &["dpdk"],
    )
    .with_cat(
        2,
        WayMask::from_paper_range(2, 3).expect("static"),
        &["fio"],
    )
    .with_device_dca("ssd", ssd_dca)
}

fn main() {
    let sweep = Sweep::over("block_kib", BLOCKS).and("ssd_dca", ["on ", "off"]);
    let specs: Vec<ScenarioSpec> = sweep
        .cells()
        .iter()
        .map(|cell| spec(BLOCKS[cell.coord(0)], DCA[cell.coord(1)]))
        .collect();
    let runs = SweepRunner::with_threads(4)
        .run_specs(&specs)
        .expect("static layout");

    println!("block    SSD-DCA   net-avg(us)  net-p99(us)  storage(GB/s)");
    for (cell, run) in sweep.cells().iter().zip(&runs) {
        let kib = BLOCKS[cell.coord(0)];
        let al = run.mean_latency_us("dpdk", LatencyKind::NetTotal);
        let tl = run.p99_latency_us("dpdk", LatencyKind::NetTotal);
        let tp = run.io_gbps("fio");
        println!(
            "{kib:>4}KB    {}     {al:>10.1} {tl:>12.1} {tp:>13.2}",
            cell.labels[1]
        );
    }
    println!("\n([SSD-DCA off] = NoSnoopOpWrEn set, Use_Allocating_Flow_Wr cleared");
    println!(" in the SSD port's perfctrlsts_0 — the NIC keeps its DDIO fast path.)");
}
