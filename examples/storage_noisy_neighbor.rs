//! Storage noisy neighbor: a latency-critical DPDK-T service shares the
//! server with a FIO tenant doing large-block reads. Watch the hidden
//! per-port DCA knob ([SSD-DCA off]) remove the interference without
//! costing the tenant anything — the paper's observation O4 / Fig. 8a.
//!
//! ```text
//! cargo run --release --example storage_noisy_neighbor
//! ```

use a4::core::Harness;
use a4::experiments::{scenario, RunOpts};
use a4::model::{ClosId, Priority, WayMask};
use a4::sim::LatencyKind;

fn run(ssd_dca: bool, block_kib: u64) -> (f64, f64, f64) {
    let opts = RunOpts::paper();
    let mut sys = scenario::base_system(&opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let lines = scenario::block_lines(&sys, block_kib);
    let fio =
        scenario::add_fio(&mut sys, ssd, lines, &[4, 5, 6, 7], Priority::Low).expect("cores free");
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(4, 5).expect("static"))
        .unwrap();
    sys.cat_assign_workload(dpdk, ClosId(1)).unwrap();
    sys.cat_set_mask(ClosId(2), WayMask::from_paper_range(2, 3).expect("static"))
        .unwrap();
    sys.cat_assign_workload(fio, ClosId(2)).unwrap();
    sys.set_device_dca(ssd, ssd_dca).expect("attached");
    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let secs = report.samples.len() as f64 * 1e-3;
    (
        report.mean_latency_ns(dpdk, LatencyKind::NetTotal) / 1000.0,
        report.p99_latency_ns(dpdk, LatencyKind::NetTotal) as f64 / 1000.0,
        report.total_io_bytes(fio) as f64 / secs / 1e9,
    )
}

fn main() {
    println!("block    SSD-DCA   net-avg(us)  net-p99(us)  storage(GB/s)");
    for kib in [64, 128, 256, 512] {
        for (label, dca) in [("on ", true), ("off", false)] {
            let (al, tl, tp) = run(dca, kib);
            println!("{kib:>4}KB    {label}     {al:>10.1} {tl:>12.1} {tp:>13.2}");
        }
    }
    println!("\n([SSD-DCA off] = NoSnoopOpWrEn set, Use_Allocating_Flow_Wr cleared");
    println!(" in the SSD port's perfctrlsts_0 — the NIC keeps its DDIO fast path.)");
}
