//! Way-allocation microscope: reproduce the paper's Fig. 3 discovery runs
//! — sweep a cache-sensitive X-Mem across every pair of LLC ways next to
//! a line-rate DPDK workload and watch the three contention bumps appear
//! (latent at the DCA ways, DMA bloat at DPDK's ways, hidden directory
//! contention at the inclusive ways). The ten sweep cells of each panel
//! run in parallel.
//!
//! ```text
//! cargo run --release --example allocation_sweep
//! ```

use a4::experiments::{fig3, RunOpts, SweepRunner};

fn main() {
    let opts = RunOpts::paper();
    let runner = SweepRunner::with_threads(4);
    println!("{}", fig3::run_with(&opts, false, &runner));
    println!("{}", fig3::run_with(&opts, true, &runner));
    println!("Compare: DPDK-NT only bumps [0:1]-[1:2]; DPDK-T adds [5:6] (bloat)");
    println!("and [9:10] (directory contention, the paper's C1).");
}
