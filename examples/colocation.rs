//! Datacenter colocation: the paper's Fig. 13a HPW-heavy mix (Fastclick,
//! Redis, SPEC CPU2017 and FFSB workloads) under all six LLC-management
//! schemes. Prints relative performance normalized to the Default model.
//!
//! ```text
//! cargo run --release --example colocation
//! ```

use a4::experiments::{fig13, RunOpts};

fn main() {
    let opts = RunOpts::controller();
    let table = fig13::run(&opts, true);
    println!("{table}");
    println!("(perf columns are relative to the Default model; >1 is better)");
}
