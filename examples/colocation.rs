//! Datacenter colocation: the paper's Fig. 13a HPW-heavy mix (Fastclick,
//! Redis, SPEC CPU2017 and FFSB workloads) under all six LLC-management
//! schemes, with the six scheme cells fanned out across four threads.
//! Prints relative performance normalized to the Default model.
//!
//! ```text
//! cargo run --release --example colocation
//! ```

use a4::experiments::{fig13, RunOpts, SweepRunner};

fn main() {
    let opts = RunOpts::controller();
    let runner = SweepRunner::with_threads(4);
    let table = fig13::run_with(&opts, true, &runner);
    println!("{table}");
    println!("(perf columns are relative to the Default model; >1 is better)");
}
