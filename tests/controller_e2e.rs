//! End-to-end A4 controller behaviour on the full-size simulated server:
//! detection, demotion, selective DCA disabling, restoration on phase
//! changes, and the headline HPW-protection result. Scenarios come from
//! the declarative `ScenarioSpec` API; tests that drive the control loop
//! manually unwrap the built harness back into its `System`.

use a4::core::{A4Config, A4Controller, FeatureLevel, LlcPolicy, Thresholds};
use a4::experiments::{fig13, RunOpts, ScenarioSpec, Scheme, WorkloadSpec};
use a4::model::{Priority, WayMask};
use a4::workloads::scale;

/// The controller detects FFSB-H-style storage antagonists, disables the
/// SSD's DCA, and the Fastclick HPW recovers — the A4-b→A4-c step of
/// Fig. 13.
#[test]
fn storage_antagonist_detection_end_to_end() {
    let opts = RunOpts {
        warmup: 16,
        measure: 6,
        seed: 0xA4,
    };
    let mut scenario = ScenarioSpec::new("antagonist-detection", opts)
        .with_nic(4, 1024)
        .with_ssd()
        .with_workload(
            "fastclick",
            WorkloadSpec::Fastclick {
                device: "nic".into(),
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "ffsb",
            WorkloadSpec::FfsbHeavy {
                device: "ssd".into(),
            },
            &[4, 5, 6],
            Priority::High,
        )
        .with_scheme(Scheme::A4(FeatureLevel::D))
        .build()
        .unwrap();
    let ssd = scenario.device("ssd");
    scenario.harness.run(opts.warmup, opts.measure);
    assert!(
        !scenario.harness.system().dca_enabled(ssd),
        "the heavy storage workload's SSD lost DCA (F2)"
    );
}

/// Workload termination mid-run: the controller re-zones without
/// panicking and the remaining workloads keep executing (failure
/// injection for the Fig. 9 workload-change path).
#[test]
fn workload_termination_triggers_rezoning() {
    let opts = RunOpts::quick();
    let scenario = ScenarioSpec::new("termination", opts)
        .with_workload(
            "hp",
            WorkloadSpec::XMem { instance: 1 },
            &[0, 1],
            Priority::High,
        )
        .build()
        .unwrap();
    let hp = scenario.workload("hp");
    let mut sys = scenario.harness.into_system();
    // A custom background LPW outside the spec vocabulary, registered
    // directly on the unwrapped system.
    let lpw_ws = scale::lines(a4::model::Bytes::from_mib(4), sys.config().hierarchy.llc);
    let base = sys.alloc_lines(lpw_ws);
    let lp = sys
        .add_workload(
            Box::new(a4::workloads::XMem::new(
                "bg",
                base,
                lpw_ws,
                a4::workloads::AccessPattern::Sequential,
                a4::workloads::AccessOp::Read,
            )),
            vec![a4::model::CoreId(2)],
            Priority::Low,
        )
        .unwrap();
    let mut a4ctl = A4Controller::new(A4Config::default());
    // Run a few seconds, kill the LPW, keep running.
    for second in 0..10u64 {
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        a4ctl.tick(&mut sys, &sample);
        if second == 5 {
            sys.set_workload_active(lp, false).unwrap();
        }
    }
    assert!(
        a4ctl.workload_state(lp).is_none(),
        "terminated workload dropped from registry"
    );
    assert!(a4ctl.workload_state(hp).is_some());
    // The HPW still executes.
    sys.run_logical_seconds(1);
    let sample = sys.sample();
    assert!(sample.workload(hp).unwrap().accesses > 0);
}

/// The LP Zone never overlaps the DCA or inclusive ways once I/O HPWs
/// exist, across the whole controller run (Fig. 10b invariant).
#[test]
fn lp_zone_invariants_hold_under_full_mix() {
    let opts = RunOpts::quick();
    let scenario = ScenarioSpec::new("lp-zone-invariants", opts)
        .with_nic(4, 1024)
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: true,
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "xmem1",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::High,
        )
        .with_workload(
            "xmem2",
            WorkloadSpec::XMem { instance: 2 },
            &[6],
            Priority::Low,
        )
        .build()
        .unwrap();
    let mut sys = scenario.harness.into_system();
    let mut a4ctl = A4Controller::new(A4Config::with_level(
        FeatureLevel::B,
        Thresholds::scaled_sim(),
    ));
    for _ in 0..15 {
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        a4ctl.tick(&mut sys, &sample);
        let lp = a4ctl.lp_zone();
        assert!(
            !lp.overlaps(WayMask::DCA),
            "LP zone entered the DCA ways: {lp}"
        );
        assert!(
            !lp.overlaps(WayMask::INCLUSIVE),
            "LP zone entered the inclusive ways: {lp}"
        );
        assert!(lp.is_contiguous(), "CAT requires contiguity: {lp}");
    }
}

/// Headline result at reduced scale: A4-d improves HPWs over Default on
/// the HPW-heavy colocation without notably compromising LPWs (the
/// paper's "+51 % HPW, LPWs unharmed").
#[test]
fn a4_headline_hpw_improvement() {
    let opts = RunOpts {
        warmup: 18,
        measure: 6,
        seed: 0xA4,
    };
    let df = fig13::run_mix(&opts, Scheme::Default, true);
    let a4r = fig13::run_mix(&opts, Scheme::A4(FeatureLevel::D), true);
    let mut hp_gain = 0.0;
    let mut hp_n = 0;
    let mut lp_gain = 0.0;
    let mut lp_n = 0;
    for binding in &df.workloads {
        let rel = a4r.perf(&binding.role) / df.perf(&binding.role).max(1e-12);
        if binding.priority == Priority::High {
            hp_gain += rel;
            hp_n += 1;
        } else {
            lp_gain += rel;
            lp_n += 1;
        }
    }
    let hp_avg = hp_gain / hp_n as f64;
    let lp_avg = lp_gain / lp_n as f64;
    assert!(hp_avg > 1.02, "HPWs improve under A4-d: {hp_avg:.3}x");
    assert!(lp_avg > 0.5, "LPWs not notably compromised: {lp_avg:.3}x");
}

/// Baseline sanity: the Isolate model's rigid partitions do not beat A4
/// for HPWs (the paper's consistent finding).
#[test]
fn isolate_does_not_beat_a4_for_hpws() {
    let opts = RunOpts {
        warmup: 18,
        measure: 6,
        seed: 0xA4,
    };
    let iso = fig13::run_mix(&opts, Scheme::Isolate, true);
    let a4r = fig13::run_mix(&opts, Scheme::A4(FeatureLevel::D), true);
    let mut iso_hp = 0.0;
    let mut a4_hp = 0.0;
    for binding in &iso.workloads {
        if binding.priority == Priority::High {
            iso_hp += iso.perf(&binding.role);
            a4_hp += a4r.perf(&binding.role);
        }
    }
    assert!(
        a4_hp >= iso_hp * 0.9,
        "A4 at least matches Isolate for HPWs"
    );
}

/// Execution-phase injection: mid-run working-set flips visibly change
/// the workload's cache behaviour while the controller keeps managing
/// safely — masks stay contiguous, the LP Zone keeps its invariants and
/// nothing wedges (the §5.6 change-reaction machinery under stress).
#[test]
fn controller_survives_phase_changes() {
    let opts = RunOpts::quick();
    let scenario = ScenarioSpec::new("phase-changes", opts)
        .with_workload(
            "hp",
            WorkloadSpec::XMem { instance: 1 },
            &[0, 1],
            Priority::High,
        )
        .with_workload(
            "lp",
            WorkloadSpec::XMem { instance: 2 },
            &[2],
            Priority::Low,
        )
        .build()
        .unwrap();
    let hp = scenario.workload("hp");
    let mut sys = scenario.harness.into_system();
    let mut a4ctl = A4Controller::new(A4Config::default());
    let mut miss_before = 0.0;
    let mut miss_after = 0.0;
    for second in 0..30u64 {
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        a4ctl.tick(&mut sys, &sample);
        if second == 14 {
            miss_before = sample.workload(hp).unwrap().mlc_miss_rate;
            // Halve the HPW's working set mid-run: it now fits the MLCs.
            sys.set_workload_phase(hp, 2).unwrap();
        }
        if second == 29 {
            miss_after = sample.workload(hp).unwrap().mlc_miss_rate;
        }
        let lp = a4ctl.lp_zone();
        assert!(lp.is_contiguous(), "masks stay programmable: {lp}");
        assert!(a4ctl.trash_mask().is_contiguous());
    }
    assert!(
        (miss_after - miss_before).abs() > 1e-6,
        "the phase flip must be observable: {miss_before:.4} vs {miss_after:.4}"
    );
    let _ = scale::factor(sys.config().hierarchy.llc); // keep the import honest
}
