//! End-to-end reproductions of the paper's §3 contention discoveries,
//! spanning every crate: devices DMA through the PCIe models into the
//! cache hierarchy while workloads execute under the simulator — exactly
//! the pipeline the figures use, at reduced run length. Scenarios are
//! described with the declarative `ScenarioSpec` API.

use a4::experiments::{fig3, fig4, RunOpts, ScenarioSpec, WorkloadSpec};
use a4::model::{Priority, WayMask};
use a4::sim::LatencyKind;

fn opts() -> RunOpts {
    RunOpts::quick()
}

/// (C1 groundwork) Fig. 3a: DPDK-NT causes latent contention at the DCA
/// ways but nothing at the inclusive ways.
#[test]
fn fig3a_dpdk_nt_only_hurts_dca_ways() {
    let table = fig3::run(&opts(), false);
    let at_dca = table.get("[0:1]", "xmem_miss").unwrap();
    let at_std = table.get("[3:4]", "xmem_miss").unwrap();
    let at_incl = table.get("[9:10]", "xmem_miss").unwrap();
    assert!(
        at_dca > 0.1,
        "latent contention at the DCA ways: {at_dca:.3}"
    );
    assert!(at_std < 0.05, "standard ways are quiet: {at_std:.3}");
    assert!(
        at_incl < 0.1,
        "NT causes no directory contention: {at_incl:.3}"
    );
}

/// (C1) Fig. 3b: DPDK-T adds the DMA-bloat bump at its own ways and the
/// hidden directory-contention bump at the inclusive ways.
#[test]
fn fig3b_dpdk_t_shows_all_three_bumps() {
    let table = fig3::run(&opts(), true);
    let at_dca = table.get("[0:1]", "xmem_miss").unwrap();
    let at_std = table.get("[3:4]", "xmem_miss").unwrap();
    let at_dpdk = table.get("[5:6]", "xmem_miss").unwrap();
    let at_incl = table.get("[9:10]", "xmem_miss").unwrap();
    assert!(
        at_dca > at_std + 0.05,
        "latent contention: {at_dca:.3} vs {at_std:.3}"
    );
    assert!(
        at_dpdk > at_std + 0.05,
        "DMA bloat at DPDK's ways: {at_dpdk:.3}"
    );
    assert!(
        at_incl > at_std + 0.05,
        "directory contention: {at_incl:.3}"
    );
}

/// Fig. 4: disabling DCA removes the directory contention but inflates
/// DPDK-T's tail latency — the trade-off motivating A4's selectivity.
#[test]
fn fig4_dca_off_trades_contention_for_latency() {
    let o = opts();
    let (_, miss_on) = fig4::run_point(&o, true, Some(WayMask::INCLUSIVE));
    let (_, miss_off) = fig4::run_point(&o, false, Some(WayMask::INCLUSIVE));
    assert!(
        miss_off < miss_on,
        "no migrations without DCA: {miss_off:.3} < {miss_on:.3}"
    );
    let (p99_on, _) = fig4::run_point(&o, true, None);
    let (p99_off, _) = fig4::run_point(&o, false, None);
    assert!(
        p99_off > p99_on,
        "device-memory-MLC path is slower: {p99_off:.1}us > {p99_on:.1}us"
    );
}

/// The FIO-solo spec of the C2 experiments, parameterized on DCA.
fn fio_solo_spec(o: &RunOpts, block_kib: u64, dca: bool) -> ScenarioSpec {
    ScenarioSpec::new(format!("fio-solo {block_kib}KB dca={dca}"), *o)
        .with_ssd()
        .with_workload(
            "fio",
            WorkloadSpec::Fio {
                device: "ssd".into(),
                block_kib,
            },
            &[0, 1, 2, 3],
            Priority::Low,
        )
        .with_device_dca("ssd", dca)
}

/// (C2) A storage workload saturates its throughput identically with and
/// without DCA while leaking heavily — observation O2's precondition.
#[test]
fn storage_is_dca_insensitive_but_leaky() {
    let o = opts();
    let mut tps = Vec::new();
    for dca in [true, false] {
        let run = fio_solo_spec(&o, 512, dca).build().unwrap().run();
        tps.push(run.io_gbps("fio"));
        if dca {
            // With DCA on, large blocks still leak: the device sample
            // shows a substantial leaked fraction of DCA allocations.
            let ssd = run.device_id("ssd");
            let leak = run
                .report
                .samples
                .iter()
                .filter_map(|s| s.device(ssd))
                .map(|d| d.dca_leak_rate)
                .sum::<f64>()
                / run.report.samples.len() as f64;
            assert!(leak > 0.3, "large blocks leak from the DCA ways: {leak:.2}");
        }
    }
    let ratio = tps[0] / tps[1];
    assert!(
        (0.85..1.18).contains(&ratio),
        "throughput insensitive to DCA: {tps:?}"
    );
}

/// (C2) Fig. 6 end-to-end: co-running FIO inflates DPDK-T latency; the
/// hidden per-port knob ([SSD-DCA off]) recovers it without hurting FIO.
#[test]
fn selective_ssd_dca_off_recovers_network_latency() {
    let o = opts();
    let run = |ssd_dca: bool| {
        let run = ScenarioSpec::new(format!("ssd-dca={ssd_dca}"), o)
            .with_nic(4, 1024)
            .with_ssd()
            .with_workload(
                "dpdk",
                WorkloadSpec::Dpdk {
                    device: "nic".into(),
                    touch: true,
                },
                &[0, 1, 2, 3],
                Priority::High,
            )
            .with_workload(
                "fio",
                WorkloadSpec::Fio {
                    device: "ssd".into(),
                    block_kib: 128,
                },
                &[4, 5, 6, 7],
                Priority::Low,
            )
            .with_cat(1, WayMask::from_paper_range(4, 5).unwrap(), &["dpdk"])
            .with_cat(2, WayMask::from_paper_range(2, 3).unwrap(), &["fio"])
            .with_device_dca("ssd", ssd_dca)
            .build()
            .unwrap()
            .run();
        (
            run.mean_latency_us("dpdk", LatencyKind::NetTotal),
            run.io_gbps("fio"),
        )
    };
    let (al_on, tp_on) = run(true);
    let (al_off, tp_off) = run(false);
    assert!(
        al_off < al_on,
        "[SSD-DCA off] lowers DPDK-T latency: {al_off:.1} < {al_on:.1} us"
    );
    let tp_ratio = tp_off / tp_on;
    assert!(
        (0.85..1.18).contains(&tp_ratio),
        "FIO throughput unharmed: {tp_on:.2} vs {tp_off:.2}"
    );
}

/// Determinism: identical seeds reproduce identical counters through the
/// full stack (NIC bursts, NVMe striping, random victims included).
#[test]
fn full_stack_runs_are_deterministic() {
    let run = || {
        let mut scenario = ScenarioSpec::microbench(RunOpts::quick()).build().unwrap();
        let report = scenario.harness.run(1, 2);
        report
            .samples
            .iter()
            .flat_map(|s| s.workloads.iter())
            .map(|w| (w.id, w.accesses, w.instructions, w.dma_leaks))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
