//! Golden-diff regression tests for the hot-loop/SoA/caching perf work.
//!
//! The per-quantum loop, the LLC/MLC array layouts and the sweep result
//! cache were all rebuilt for speed under one correctness bar: *tables
//! stay byte-identical* — same seeds, same victim picks, same counters.
//! The JSON tables under `tests/golden/` were produced by the pre-change
//! code (`a4-repro fig12 fig13 --quick --json`); these tests regenerate
//! them with the current code and compare the serialized bytes.

use a4::experiments::{fig12, fig13, RunOpts, SweepRunner};

fn quick_ctl_opts() -> RunOpts {
    // Mirrors a4-repro's --quick protocol for controller figures.
    RunOpts {
        warmup: 12,
        measure: 4,
        seed: 0xA4,
    }
}

fn assert_matches_golden(table: &a4::experiments::Table, golden_file: &str) {
    let json = serde_json::to_string_pretty(table).expect("tables serialize");
    let path = format!("{}/tests/golden/{golden_file}", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden table {path}: {e}"));
    assert!(
        json == golden,
        "{golden_file} diverged from the pre-refactor golden bytes.\n\
         The hot-loop/SoA/cache work must not change simulation results; \
         if a *semantic* change is intended, regenerate tests/golden/ and \
         bump a4::experiments::cache::CODE_SALT in the same commit."
    );
}

#[test]
fn fig12_quick_table_is_byte_identical_to_pre_refactor() {
    let table = fig12::run_with(&quick_ctl_opts(), &SweepRunner::with_threads(2));
    assert_matches_golden(&table, "fig12.json");
}

#[test]
fn fig13_quick_tables_are_byte_identical_to_pre_refactor() {
    let opts = quick_ctl_opts();
    let runner = SweepRunner::with_threads(2);
    let hp = fig13::run_with(&opts, true, &runner);
    let lp = fig13::run_with(&opts, false, &runner);
    assert_matches_golden(&hp, "fig13a.json");
    assert_matches_golden(&lp, "fig13b.json");
}
