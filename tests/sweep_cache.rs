//! End-to-end tests of the content-addressed sweep result cache:
//!
//! * a cold run populates one entry per cell;
//! * a warm run is byte-identical to the cold run *and provably reads
//!   from the cache* (a tampered entry surfaces its tampered values —
//!   there is no hidden re-simulation);
//! * editing one cell's spec invalidates only that cell.

use a4::experiments::{
    spec_key, ResultCache, RunOpts, ScenarioSpec, SeedPolicy, Shard, SweepJob, SweepRunner,
    WorkloadSpec,
};
use a4::model::Priority;
use std::path::PathBuf;

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a4-sweep-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cells() -> Vec<ScenarioSpec> {
    [64u64, 1514]
        .iter()
        .map(|&pkt| {
            ScenarioSpec::new(
                format!("cache-e2e-{pkt}"),
                RunOpts {
                    warmup: 1,
                    measure: 2,
                    seed: 0xA4,
                },
            )
            .with_nic(2, pkt)
            .with_workload(
                "dpdk",
                WorkloadSpec::Dpdk {
                    device: "nic".into(),
                    touch: true,
                },
                &[0, 1],
                Priority::High,
            )
        })
        .collect()
}

/// The observable result of one cell, for byte-exact comparisons.
fn fingerprint(run: &a4::experiments::ScenarioRun) -> (u64, u64, u64, u64) {
    let id = run.id("dpdk");
    let all = run.report.total_instructions_all();
    (
        run.report.total_ops(id),
        run.report.total_io_bytes(id),
        run.report.ipc(id).to_bits(),
        all,
    )
}

#[test]
fn cold_populates_warm_hits_and_is_byte_identical() {
    let dir = tmp_cache("warm");
    let specs = cells();
    let runner = SweepRunner::serial().with_cache_dir(&dir);

    let cold: Vec<_> = runner
        .run_specs(&specs)
        .expect("cold run")
        .iter()
        .map(fingerprint)
        .collect();
    let entries = std::fs::read_dir(&dir).expect("cache dir created").count();
    assert_eq!(entries, specs.len(), "one cache entry per cell");

    let warm: Vec<_> = runner
        .run_specs(&specs)
        .expect("warm run")
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(warm, cold, "warm tables must be byte-identical");

    // Prove the warm path reads the cache rather than re-simulating:
    // tamper with cell 0's stored report and observe the tampered value
    // come back. (`ops` appears in the serialized WorkloadSample rows.)
    let key = spec_key(&specs[0]);
    let path = dir.join(format!("{key}.report.json"));
    let json = std::fs::read_to_string(&path).expect("entry exists");
    let cold_ops = cold[0].0;
    assert!(json.contains("\"ops\""), "report JSON carries ops fields");
    let tampered = json.replace("\"ops\":", "\"_ops_shifted\":0,\"ops2\":");
    // Rename every per-sample ops field away; the sample deserializer
    // must now fail => treated as a miss. First check miss-recovery:
    std::fs::write(&path, &tampered).unwrap();
    let recovered = runner
        .run_specs(&specs)
        .expect("corrupt entry re-simulated");
    assert_eq!(fingerprint(&recovered[0]).0, cold_ops, "re-simulated");

    // Now a *valid but different* entry: swap in the other cell's report
    // under cell 0's key. A warm run must surface the swapped report —
    // proof that no simulation happened.
    let other = std::fs::read_to_string(dir.join(format!("{}.report.json", spec_key(&specs[1]))))
        .expect("other entry");
    std::fs::write(&path, other).unwrap();
    let swapped = runner.run_specs(&specs).expect("swapped run");
    assert_eq!(
        fingerprint(&swapped[0]),
        cold[1],
        "warm path must come from the cache, not re-simulation"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn editing_one_cell_invalidates_only_itself() {
    let dir = tmp_cache("edit");
    let mut specs = cells();
    let runner = SweepRunner::serial().with_cache_dir(&dir);
    runner.run_specs(&specs).expect("cold run");

    let untouched_key = spec_key(&specs[1]);
    let old_key = spec_key(&specs[0]);

    // Edit cell 0 (different packet size => different content hash).
    specs[0] = ScenarioSpec::new("cache-e2e-edited", specs[0].opts)
        .with_nic(2, 256)
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: true,
            },
            &[0, 1],
            Priority::High,
        );
    let new_key = spec_key(&specs[0]);
    assert_ne!(new_key, old_key, "edited cell gets a fresh key");

    runner.run_specs(&specs).expect("edited run");
    assert!(
        dir.join(format!("{new_key}.report.json")).exists(),
        "edited cell was simulated and cached under its new key"
    );
    assert!(
        dir.join(format!("{untouched_key}.report.json")).exists(),
        "untouched cell's entry survives"
    );
    assert!(
        dir.join(format!("{old_key}.report.json")).exists(),
        "old entry is left for resumability (content-addressed store)"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replicas_key_the_cache_independently() {
    // `--replicas N` reruns each cell at doubly-derived seeds; every
    // (cell, replica) pair must cache under its own key (the effective
    // post-derivation spec), reproduce bit-identically warm, and never
    // collide with the plain or per-cell-derived runs. X-Mem 3 consumes
    // the workload RNG, so distinct seeds give distinct results.
    let dir = tmp_cache("replicas");
    let specs: Vec<ScenarioSpec> = cells()
        .into_iter()
        .map(|s| {
            s.with_workload(
                "xmem3",
                WorkloadSpec::XMem { instance: 3 },
                &[2],
                Priority::Low,
            )
        })
        .collect();
    let run_replica = |r: u64| -> Vec<(u64, u64, u64, u64)> {
        SweepRunner::serial()
            .with_cache_dir(&dir)
            .replica(r)
            .run_specs(&specs)
            .unwrap()
            .iter()
            .map(fingerprint)
            .collect()
    };

    let rep0 = run_replica(0);
    let entries_after_rep0 = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(entries_after_rep0, specs.len(), "one entry per cell");
    let rep1 = run_replica(1);
    let entries_after_rep1 = std::fs::read_dir(&dir).unwrap().count();
    assert_ne!(rep0, rep1, "replicas simulate distinct seeds");
    assert_eq!(
        entries_after_rep1,
        2 * specs.len(),
        "each replica owns its cache entries"
    );

    // Warm re-runs of both replicas are byte-identical and add nothing.
    assert_eq!(run_replica(0), rep0);
    assert_eq!(run_replica(1), rep1);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2 * specs.len());

    // A plain (underived) run keys separately from every replica.
    let plain: Vec<_> = SweepRunner::serial()
        .with_cache_dir(&dir)
        .run_specs(&specs)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    assert_ne!(plain, rep0);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3 * specs.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_shared_store_never_simulates() {
    // The service contract behind `--shard`/`--worker`: once every cell
    // of a job has landed in the shared store — via any mix of shards —
    // a fresh process over that store is a pure reader.
    let dir = tmp_cache("service-warm");
    let job = SweepJob::new(
        "fig4",
        RunOpts {
            warmup: 1,
            measure: 2,
            seed: 0xA4,
        },
        1,
        SeedPolicy::SpecSeed,
    )
    .unwrap();

    // Populate the store shard by shard, each with its own runner (its
    // own process, in the CLI).
    for index in 0..2 {
        let runner = SweepRunner::serial().with_cache_dir(&dir);
        job.execute_shard(Shard::new(index, 2), &runner).unwrap();
    }

    // A fresh runner over the populated store simulates nothing...
    let warm = SweepRunner::serial().with_cache_dir(&dir);
    let tables = job.execute(&warm).unwrap();
    assert_eq!(
        warm.cache().unwrap().simulated(),
        0,
        "warm shared store: every cell loads"
    );
    // ...and the runner-less merge renders the same tables.
    assert_eq!(
        job.render_from_store(&ResultCache::new(&dir)).unwrap(),
        tables
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn derived_seeds_key_the_effective_spec() {
    // With per-cell seed derivation the *effective* spec (post
    // derive_seed) must be what's cached, so plain and derived runs
    // never collide. The cells must actually consume the workload RNG
    // for the seed to show in results — X-Mem 3 reads randomly (DPDK
    // alone never draws from it).
    let dir = tmp_cache("seeds");
    let specs: Vec<ScenarioSpec> = cells()
        .into_iter()
        .map(|s| {
            s.with_workload(
                "xmem3",
                WorkloadSpec::XMem { instance: 3 },
                &[2],
                Priority::Low,
            )
        })
        .collect();
    let plain = SweepRunner::serial().with_cache_dir(&dir);
    let derived = SweepRunner::serial()
        .with_cache_dir(&dir)
        .derive_seeds(true);

    let a: Vec<_> = plain
        .run_specs(&specs)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    let entries_after_plain = std::fs::read_dir(&dir).unwrap().count();
    let b: Vec<_> = derived
        .run_specs(&specs)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    let entries_after_derived = std::fs::read_dir(&dir).unwrap().count();
    // Cell 0 derives a different seed than the base for index 0, cell 1
    // too: derived entries are new.
    assert!(entries_after_derived > entries_after_plain);
    assert_ne!(a, b, "derived seeds simulate different runs");
    // And both remain cached + reproducible.
    let b2: Vec<_> = derived
        .run_specs(&specs)
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(b, b2);
    std::fs::remove_dir_all(&dir).ok();
}
