//! Hot-loop neutrality: exact per-workload counters for a fixed-seed
//! NIC+NVMe colocation, pinned from the pre-refactor code.
//!
//! The quantum loop, the SoA LLC/MLC arrays, the exact-LRU recency lists
//! and the digest scans are all pure speed structures: same seeds, same
//! victim picks, same counters. Any drift in these numbers means a
//! semantic change sneaked into the "allocation-free hot loop" work —
//! which also invalidates every cached `RunReport`, so an intentional
//! change must update these constants *and* bump
//! `a4::experiments::cache::CODE_SALT` together.

use a4::experiments::{RunOpts, ScenarioSpec};
use a4::model::WorkloadId;
use a4::sim::WorkloadSample;

/// Exact counter sums over the measurement window for one role.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    role: &'static str,
    accesses: u64,
    instructions: u64,
    ops: u64,
    io_bytes: u64,
    dma_leaks: u64,
    dma_bloats: u64,
    migrations: u64,
    dca_allocs: u64,
    mem_read_bytes: u64,
    mem_write_bytes: u64,
    /// Bit pattern of the mean IPC — floats must match exactly too.
    ipc_bits: u64,
}

/// Captured from the seed code (pre PR) with
/// `ScenarioSpec::microbench(RunOpts::quick())`: DPDK-T + FIO(2MB) +
/// X-Mem 1/2/3 on the scaled Xeon, seed 0xA4, 3 s warm-up + 3 s measure.
///
/// Re-verified unchanged after the fio double-reap fix (CODE_SALT r2):
/// a solo FIO instance reaps its completions in submission order, so the
/// slot free-list hands out exactly the slots the old `next_slot`
/// rotation would have — only the FFSB colocations (fig13 goldens)
/// changed. Also unchanged by the 2-socket NUMA model: single-socket
/// systems are the bit-identical local-only special case
/// (crates/sim/tests/numa_equiv.rs proves it for random mixes).
const GOLDEN: [Golden; 5] = [
    Golden {
        role: "dpdk",
        accesses: 362_032,
        instructions: 1_213_872,
        ops: 21_296,
        io_bytes: 21_807_104,
        dma_leaks: 361_768,
        dma_bloats: 0,
        migrations: 263,
        dca_allocs: 361_764,
        mem_read_bytes: 23_151_936,
        mem_write_bytes: 23_154_048,
        ipc_bits: 0x3f9e_0b5b_9470_5bdf,
    },
    Golden {
        role: "fio",
        accesses: 608_850,
        instructions: 8_705_700,
        ops: 675,
        io_bytes: 38_966_400,
        dma_leaks: 550_791,
        dma_bloats: 557_949,
        migrations: 58_426,
        dca_allocs: 609_373,
        mem_read_bytes: 35_227_136,
        mem_write_bytes: 38_993_024,
        ipc_bits: 0x3fbd_a6ab_ce18_1399,
    },
    Golden {
        role: "xmem1",
        accesses: 384_269,
        instructions: 1_537_076,
        ops: 384_269,
        io_bytes: 0,
        dma_leaks: 0,
        dma_bloats: 0,
        migrations: 128_032,
        dca_allocs: 0,
        mem_read_bytes: 6_103_104,
        mem_write_bytes: 0,
        ipc_bits: 0x3fbc_0d29_8128_71f5,
    },
    Golden {
        role: "xmem2",
        accesses: 99_008,
        instructions: 396_032,
        ops: 99_008,
        io_bytes: 0,
        dma_leaks: 0,
        dma_bloats: 0,
        migrations: 23_443,
        dca_allocs: 0,
        mem_read_bytes: 4_741_632,
        mem_write_bytes: 5_729_152,
        ipc_bits: 0x3fac_c5f3_01b2_97cb,
    },
    Golden {
        role: "xmem3",
        accesses: 102_415,
        instructions: 409_660,
        ops: 102_415,
        io_bytes: 0,
        dma_leaks: 0,
        dma_bloats: 0,
        migrations: 14_235,
        dca_allocs: 0,
        mem_read_bytes: 4_796_736,
        mem_write_bytes: 0,
        ipc_bits: 0x3fad_c178_2d50_e623,
    },
];

#[test]
fn microbench_counters_match_pre_refactor_exactly() {
    let run = ScenarioSpec::microbench(RunOpts::quick())
        .build()
        .expect("static microbench layout")
        .run();
    let sum = |id: WorkloadId, f: &dyn Fn(&WorkloadSample) -> u64| -> u64 {
        run.report
            .samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(f)
            .sum()
    };
    for golden in &GOLDEN {
        let id = run.id(golden.role);
        let actual = Golden {
            role: golden.role,
            accesses: sum(id, &|w| w.accesses),
            instructions: sum(id, &|w| w.instructions),
            ops: sum(id, &|w| w.ops),
            io_bytes: sum(id, &|w| w.io_bytes),
            dma_leaks: sum(id, &|w| w.dma_leaks),
            dma_bloats: sum(id, &|w| w.dma_bloats),
            migrations: sum(id, &|w| w.migrations),
            dca_allocs: sum(id, &|w| w.dca_allocs),
            mem_read_bytes: sum(id, &|w| w.mem_read_bytes),
            mem_write_bytes: sum(id, &|w| w.mem_write_bytes),
            ipc_bits: run.report.ipc(id).to_bits(),
        };
        assert_eq!(
            actual, *golden,
            "{} counters diverged from the pre-refactor capture",
            golden.role
        );
    }
}
