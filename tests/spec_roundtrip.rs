//! Serde round-trip property tests for the declarative experiment API:
//! any `ScenarioSpec` / `RunOpts` / `Scheme` dumped by `a4-repro
//! --dump-specs` (or `--json`) must be reloadable bit-for-bit, so
//! serialized experiments are durable artifacts.

use a4::core::{FeatureLevel, Thresholds};
use a4::experiments::spec::{DeviceSpec, Metric, SocketDca, SpecError, SystemTweaks};
use a4::experiments::{RunOpts, ScenarioSpec, Scheme, WorkloadSpec};
use a4::model::{Priority, WayMask};
use proptest::prelude::*;

fn opts_strategy() -> impl Strategy<Value = RunOpts> {
    (0u64..40, 1u64..40, any::<u64>()).prop_map(|(warmup, measure, seed)| RunOpts {
        warmup,
        measure,
        seed,
    })
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    (0usize..6).prop_map(|i| Scheme::all_six()[i])
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        any::<bool>().prop_map(|touch| WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch
        }),
        (2u64..2048).prop_map(|block_kib| WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib
        }),
        (1u8..4).prop_map(|instance| WorkloadSpec::XMem { instance }),
        Just(WorkloadSpec::Fastclick {
            device: "nic".into()
        }),
        Just(WorkloadSpec::FfsbHeavy {
            device: "ssd".into()
        }),
        Just(WorkloadSpec::FfsbLight {
            device: "ssd".into()
        }),
        Just(WorkloadSpec::RedisServer),
        Just(WorkloadSpec::RedisClient),
        (0usize..4).prop_map(|i| WorkloadSpec::SpecCpu {
            benchmark: ["lbm", "mcf", "x264", "bwaves"][i].into(),
        }),
    ]
}

fn tweaks_strategy() -> impl Strategy<Value = SystemTweaks> {
    (
        (0usize..3, 0usize..3, 0usize..3),
        (0usize..4, 0usize..3, 0usize..3),
    )
        .prop_map(|((c, d, m), (s, u, g))| SystemTweaks {
            cores: [None, Some(12), Some(18)][c],
            dca_ways: [None, Some(1), Some(4)][d],
            mem_channels: [None, Some(2), Some(6)][m],
            sockets: [None, Some(1), Some(2), Some(4)][s],
            upi_ns: [None, Some(0), Some(120)][u],
            upi_gbps: [None, Some(1.0), Some(41.6)][g],
            socket_dca_ways: if s >= 2 {
                vec![SocketDca {
                    socket: 1,
                    dca_ways: 3,
                }]
            } else {
                vec![]
            },
        })
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        opts_strategy(),
        scheme_strategy(),
        any::<bool>(),
        workload_strategy(),
        workload_strategy(),
        tweaks_strategy(),
        (0usize..10, any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |(opts, scheme, with_scheme, w1, w2, tweaks, (mask_lo, global_dca, ssd_dca))| {
                let mut spec = ScenarioSpec::new("prop", opts)
                    .with_nic(4, 1024)
                    .with_ssd()
                    .with_system(tweaks)
                    .with_workload("w1", w1, &[0, 1], Priority::High)
                    .with_workload_metric("w2", w2, &[2], Priority::Low, Metric::Ipc)
                    .with_cat(
                        1,
                        WayMask::from_paper_range(mask_lo, mask_lo + 1).unwrap(),
                        &["w1"],
                    )
                    .with_global_dca(global_dca)
                    .with_device_dca("ssd", ssd_dca);
                if with_scheme {
                    spec = spec.with_scheme(scheme);
                    if matches!(scheme, Scheme::A4(_)) {
                        spec = spec.with_thresholds(Thresholds::scaled_sim());
                    }
                }
                spec
            },
        )
}

proptest! {
    #[test]
    fn run_opts_roundtrip(opts in opts_strategy()) {
        let json = serde_json::to_string(&opts).unwrap();
        let back: RunOpts = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, opts);
    }

    #[test]
    fn scheme_roundtrip(scheme in scheme_strategy()) {
        let json = serde_json::to_string(&scheme).unwrap();
        let back: Scheme = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, scheme);
    }

    #[test]
    fn scenario_spec_roundtrip(spec in spec_strategy()) {
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn workload_spec_roundtrip(w in workload_strategy()) {
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, w);
    }
}

/// Table-driven rejection cases for impossible NUMA placements: each row
/// is (description, spec mutation, substring the friendly error must
/// contain).
#[test]
fn numa_placement_rejections_are_friendly() {
    type Mutator = fn(ScenarioSpec) -> ScenarioSpec;
    let base = || {
        ScenarioSpec::new("numa-reject", RunOpts::quick())
            .with_system(SystemTweaks::two_socket(None))
    };
    let cases: [(&str, Mutator, &str); 7] = [
        (
            "device on nonexistent socket",
            |s| s.with_ssd_on(2),
            "attached to socket 2",
        ),
        (
            "core range straddling sockets",
            |s| {
                // Cores 17 and 18 sit on different sockets (18/socket).
                s.with_workload(
                    "xmem",
                    WorkloadSpec::XMem { instance: 1 },
                    &[17, 18],
                    Priority::High,
                )
            },
            "straddles sockets",
        ),
        (
            "core outside the system",
            |s| {
                s.with_workload(
                    "xmem",
                    WorkloadSpec::XMem { instance: 1 },
                    &[36],
                    Priority::High,
                )
            },
            "outside the 36 cores",
        ),
        (
            "remote-only DCA override",
            |s| {
                let mut s = s;
                s.system.sockets = None; // back to one socket...
                s.system.socket_dca_ways = vec![SocketDca {
                    socket: 1, // ...but overriding DCA on socket 1
                    dca_ways: 4,
                }];
                s
            },
            "remote-only DCA",
        ),
        (
            "per-socket DCA way count out of range",
            |s| {
                let mut s = s;
                s.system.socket_dca_ways = vec![SocketDca {
                    socket: 1,
                    dca_ways: 12,
                }];
                s
            },
            "outside the LLC's",
        ),
        (
            "duplicate per-socket DCA override",
            |s| {
                let mut s = s;
                s.system.socket_dca_ways = vec![
                    SocketDca {
                        socket: 1,
                        dca_ways: 2,
                    },
                    SocketDca {
                        socket: 1,
                        dca_ways: 4,
                    },
                ];
                s
            },
            "duplicate DCA way override",
        ),
        (
            "more sockets than the model covers",
            |s| {
                let mut s = s;
                s.system.sockets = Some(a4::model::MAX_SOCKETS + 1);
                s
            },
            "the NUMA model covers 1 to",
        ),
    ];
    for (what, mutate, needle) in cases {
        let spec = mutate(base());
        match spec.validate() {
            Err(SpecError::Invalid(msg)) => assert!(
                msg.contains(needle),
                "{what}: error {msg:?} should mention {needle:?}"
            ),
            other => panic!("{what}: expected Invalid error, got {other:?}"),
        }
    }
    // The unmutated two-socket base is fine, as is a fully remote but
    // *consistent* placement.
    base().validate().expect("bare two-socket spec is valid");
    base()
        .with_nic_on(1, 4, 1024)
        .with_workload_on(
            1,
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: true,
            },
            &[0, 1],
            Priority::High,
        )
        .validate()
        .expect("socket-1 NIC + socket-1 workload is a valid placement");
}

/// Non-property pin: the exact representation of the newtype scheme
/// variant (the vendored serde bug class this suite guards against).
#[test]
fn a4_scheme_serializes_transparently() {
    let json = serde_json::to_string(&Scheme::A4(FeatureLevel::C)).unwrap();
    assert_eq!(json, r#"{"A4":"C"}"#);
    let device = DeviceSpec::Ssd;
    let json = serde_json::to_string(&device).unwrap();
    let back: DeviceSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, device);
}
