//! Chaos tests for the sweep fabric: every guarantee the fabric makes
//! — no task lost, no duplicate completion, no corrupt result served,
//! byte-identical merges — must hold *under injected faults*, not just
//! on the happy path. The [`a4::experiments::FaultFs`] seam drives a
//! deterministic, seeded fault schedule through the exact same code
//! paths `a4-repro --worker` uses in production, so a failure here is a
//! real crash-consistency bug, not test flakiness.

use a4::core::RunReport;
use a4::experiments::service::ServiceError;
use a4::experiments::{
    drain_queue, fabric_health, spec_key, Backoff, DrainReport, Enqueued, FaultFs, FaultPlan, Fs,
    JobQueue, JobTables, ResultCache, RunOpts, ScenarioSpec, SeedPolicy, Shard, SweepJob,
    SweepRunner, Task, TaskState, MIN_STALE_AGE,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

fn quick() -> RunOpts {
    RunOpts {
        warmup: 1,
        measure: 2,
        seed: 0xA4,
    }
}

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a4-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Byte-identical in both renderings (display text and JSON), not
/// merely structurally equal.
fn assert_rendered_identical(a: &JobTables, b: &JobTables) {
    assert_eq!(a, b);
    let (JobTables::Single(ta), JobTables::Single(tb)) = (a, b) else {
        panic!("single-replica jobs render plain tables");
    };
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!(x.to_string(), y.to_string());
        assert_eq!(
            serde_json::to_string(x).unwrap(),
            serde_json::to_string(y).unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Crash consistency: a worker process dying at *any* filesystem
// boundary of the enqueue → claim → heartbeat → complete protocol must
// leave the queue directories recoverable — the task sits in at most
// one state directory, every published file parses, and a fresh
// process drives the task to done exactly once.
// ---------------------------------------------------------------------

/// The scripted protocol run performs exactly these mutating ops:
/// enqueue (temp write, publish rename), claim (rename, attempt-count
/// write), heartbeat (touch), complete (rename, attempt-count remove)
/// — seven schedule slots, so crashing at ordinal 7 means "no crash".
const PROTOCOL_OPS: u64 = 7;

fn backdate(path: &Path) {
    let f = std::fs::File::options().append(true).open(path).unwrap();
    f.set_modified(SystemTime::now() - Duration::from_secs(60))
        .unwrap();
}

/// Files in `queue/<sub>/` belonging to task `id` (temp scratch files
/// start with `.` and are excluded — they are never protocol state).
fn task_files(dir: &Path, sub: &str, id: &str) -> Vec<PathBuf> {
    let prefix = format!("{id}.");
    let Ok(entries) = std::fs::read_dir(dir.join("queue").join(sub)) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
        .map(|e| e.path())
        .collect()
}

/// Runs the protocol against a filesystem scripted to crash at
/// mutating op `crash_at`, then recovers with a plain filesystem and
/// asserts the fabric's invariants at every step.
fn crash_and_recover(seed: u64, crash_at: u64) {
    let dir = tmp_store(&format!("crash-{seed:x}-{crash_at}"));
    let job = SweepJob::new("fig12", quick(), 1, SeedPolicy::SpecSeed).unwrap();
    let task = Task {
        job,
        shard: Shard::new(0, 2),
    };
    let id = task.id().unwrap();

    let faults = Arc::new(FaultFs::new(FaultPlan::crash_only(seed, crash_at)));
    if let Ok(queue) = JobQueue::open_with_fs(&dir, faults.clone() as Arc<dyn Fs>) {
        // Each step tolerates failure: past the crash point the handle
        // is dead and everything errors, exactly like a killed process.
        if queue.enqueue(&task).is_ok() {
            if let Ok(Some(lease)) = queue.claim("w1") {
                let _ = lease.heartbeat();
                let _ = queue.complete(lease).is_ok();
            }
        }
    }
    assert_eq!(
        faults.crashed(),
        crash_at < PROTOCOL_OPS,
        "crash ordinal {crash_at} (seed {seed:#x})"
    );

    // Invariant 1: the task occupies at most one state directory —
    // every transition is a rename, which either happened or did not.
    let pending = task_files(&dir, "pending", &id);
    let leased = task_files(&dir, "leases", &id);
    let done = task_files(&dir, "done", &id);
    let occupied = [&pending, &leased, &done]
        .iter()
        .filter(|v| !v.is_empty())
        .count();
    assert!(
        occupied <= 1,
        "task {id} in {occupied} state dirs after crash at {crash_at} \
         (pending {pending:?}, leased {leased:?}, done {done:?})"
    );

    // Invariant 2: every *published* task file parses — torn writes can
    // only ever land in dot-prefixed temp files, never behind a rename.
    for path in pending.iter().chain(&done) {
        let json = std::fs::read_to_string(path).unwrap();
        let parsed: Result<Task, _> = serde_json::from_str(&json);
        assert!(parsed.is_ok(), "torn task file published at {path:?}");
    }

    // Recovery: a fresh process on a healthy filesystem drives the task
    // to done, whatever state the crash left it in.
    let queue = JobQueue::open(&dir).unwrap();
    match queue.state(&id) {
        TaskState::Done => {}
        TaskState::Pending | TaskState::Unknown => {
            // Unknown = the crash predates publication; re-enqueue is
            // the client's normal retry and must not be confused by
            // leftover temp files.
            let enq = queue.enqueue(&task).unwrap();
            assert_ne!(enq, Enqueued::AlreadyDone);
            let lease = queue.claim("w2").unwrap().expect("pending task claims");
            queue.complete(lease).unwrap();
        }
        TaskState::Leased => {
            // The dead worker's lease must age out, not block forever.
            for lease in task_files(&dir, "leases", &id) {
                backdate(&lease);
            }
            assert_eq!(queue.reclaim_stale(Duration::ZERO).unwrap(), 1);
            let lease = queue.claim("w2").unwrap().expect("reclaimed task claims");
            queue.complete(lease).unwrap();
        }
    }

    // Invariant 3: done exactly once, and completion is terminal — a
    // re-enqueue deduplicates and nothing remains claimable.
    assert_eq!(queue.state(&id), TaskState::Done);
    assert_eq!(task_files(&dir, "done", &id).len(), 1);
    assert_eq!(queue.enqueue(&task).unwrap(), Enqueued::AlreadyDone);
    assert!(queue.claim("w3").unwrap().is_none());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The queue protocol survives a crash at every mutating-op
    /// boundary, for arbitrary schedule seeds (the seed decides each
    /// crash's half-applied/not-applied polarity).
    #[test]
    fn queue_survives_a_crash_at_every_boundary(seed in 1u64..u64::MAX) {
        for crash_at in 0..=PROTOCOL_OPS {
            crash_and_recover(seed, crash_at);
        }
    }
}

// ---------------------------------------------------------------------
// Store corruption: arbitrary damage to a stored entry — truncation,
// bit flips, garbage — must never be served as a result. Parseable
// entries with checksum mismatches are quarantined for post-mortem;
// everything else is a plain miss; the cell re-executes idempotently.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Corruption {
    /// Keep this percentage of the entry's bytes.
    Truncate(usize),
    /// Flip one bit somewhere in the entry.
    BitFlip(usize),
    /// Replace the entry wholesale.
    Garbage(u8),
}

fn corruption_strategy() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (0usize..99).prop_map(Corruption::Truncate),
        (0usize..100_000).prop_map(Corruption::BitFlip),
        (0u8..4).prop_map(Corruption::Garbage),
    ]
}

fn corrupt(bytes: &[u8], how: &Corruption) -> Vec<u8> {
    match *how {
        Corruption::Truncate(pct) => bytes[..bytes.len() * pct / 100].to_vec(),
        Corruption::BitFlip(pos) => {
            let mut out = bytes.to_vec();
            out[pos % bytes.len()] ^= 1 << (pos % 8);
            out
        }
        Corruption::Garbage(kind) => match kind {
            0 => Vec::new(),
            1 => b"not json at all".to_vec(),
            2 => b"{\"payload_fnv\":42}".to_vec(),
            _ => b"{\"payload_fnv\":\"00000000000000000000000000000000\",\"report\":{}}".to_vec(),
        },
    }
}

fn sample_report() -> &'static (String, RunReport) {
    static SAMPLE: std::sync::OnceLock<(String, RunReport)> = std::sync::OnceLock::new();
    SAMPLE.get_or_init(|| {
        let spec = ScenarioSpec::microbench(RunOpts {
            warmup: 0,
            measure: 1,
            seed: 0xA4,
        });
        let report = spec.build().unwrap().run().report;
        (spec_key(&spec), report)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any corruption of a stored entry misses (or, for damage the
    /// canonical serialization cannot even observe, loads the exact
    /// original bytes); checksum-mismatched entries are quarantined,
    /// and the cell re-stores and serves again afterwards.
    #[test]
    fn corrupt_entries_never_serve_wrong_data(how in corruption_strategy(), case in 0u64..u64::MAX) {
        let (key, report) = sample_report();
        let dir = tmp_store(&format!("corrupt-{case:x}"));
        let cache = ResultCache::new(&dir);
        cache.store(key, report);
        prop_assert_eq!(cache.write_failures(), 0);

        let path = dir.join(format!("{key}.report.json"));
        let original = std::fs::read(&path).unwrap();
        let damaged = corrupt(&original, &how);
        if damaged == original {
            // A 100% truncate draw is the identity; nothing to test.
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        }
        std::fs::write(&path, &damaged).unwrap();

        match cache.load(key) {
            None => {}
            Some(loaded) => {
                // Only reachable if the damage round-trips to the exact
                // original payload — then it *is* the original report.
                prop_assert_eq!(
                    serde_json::to_string(&loaded).unwrap(),
                    serde_json::to_string(report).unwrap(),
                    "corrupted entry served as a different report: {:?}", how
                );
            }
        }

        // Quarantine happens exactly for parseable-but-mismatched
        // entries, and moves (not copies) the damaged file.
        let quarantined = cache.quarantined();
        prop_assert!(quarantined <= 1);
        if quarantined == 1 {
            let grave = cache.corrupt_dir().join(format!("{key}.report.json"));
            prop_assert!(grave.exists(), "quarantined entry kept for post-mortem");
            prop_assert!(!path.exists(), "quarantined entry removed from the store");
            prop_assert_eq!(std::fs::read(&grave).unwrap(), damaged);
        }

        // The cell re-executes idempotently: a fresh store overwrites
        // whatever the corruption left and serves again.
        cache.store(key, report);
        let back = cache.load(key).expect("re-stored entry loads");
        prop_assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(report).unwrap()
        );
        prop_assert_eq!(cache.quarantined(), quarantined, "re-store never re-quarantines");
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// End-to-end chaos: a fig12 sweep drained by queue workers whose every
// filesystem operation runs under the seeded chaos schedule (ENOSPC-
// style write failures, torn temp writes, refused renames) must merge
// to tables byte-identical to a fault-free single-process run.
// ---------------------------------------------------------------------

#[test]
fn fig12_chaos_drain_merges_byte_identical_to_fault_free() {
    let dir = tmp_store("e2e");
    let job = SweepJob::new("fig12", quick(), 1, SeedPolicy::SpecSeed).unwrap();

    // Reference: the direct, fault-free, cache-less path.
    let direct = job.execute(&SweepRunner::serial()).unwrap();

    let faults = Arc::new(FaultFs::new(FaultPlan::chaos(0xA4)));
    let backoff = Backoff::immediate();
    let queue = JobQueue::open_with_fs(&dir, faults.clone() as Arc<dyn Fs>).unwrap();
    for index in 0..3 {
        let task = Task {
            job: job.clone(),
            shard: Shard::new(index, 3),
        };
        let mut retries = 0;
        backoff
            .retry(&mut retries, || queue.enqueue(&task))
            .expect("enqueue converges under chaos");
    }

    // Drain through the same library loop `a4-repro --worker` uses,
    // with both the store and the queue behind the fault schedule. A
    // drain pass may legitimately stop early (repeated heartbeat
    // failures release the lease); the released task is simply claimed
    // again — exactly a worker fleet's behaviour.
    let store = ResultCache::with_fs(&dir, faults.clone() as Arc<dyn Fs>);
    let runner = SweepRunner::serial().with_cache(store);
    let mut drain = DrainReport::default();
    loop {
        // Unlimited attempt budget: heartbeat-release cycles under
        // chaos legitimately re-claim the same healthy task many
        // times, and quarantining it would stall the drain this test
        // asserts converges.
        let pass = drain_queue(
            &queue,
            &runner,
            "chaos",
            MIN_STALE_AGE,
            u64::MAX,
            &backoff,
            |_| {},
        )
        .expect("drain converges under chaos");
        drain.tasks += pass.tasks;
        drain.executed += pass.executed;
        drain.reclaimed += pass.reclaimed;
        drain.retries += pass.retries;
        drain.heartbeat_failures += pass.heartbeat_failures;
        let (_, _, done) = queue.counts().unwrap();
        if done == 3 {
            break;
        }
        assert!(pass.released, "a non-draining pass must have released");
    }
    assert_eq!(drain.tasks, 3, "every shard task completed");
    assert!(
        faults.injected() > 0,
        "the chaos schedule actually injected faults"
    );
    let cache = runner.cache().unwrap();
    assert_eq!(cache.write_failures(), 0, "retries absorb every transient");
    assert_eq!(cache.quarantined(), 0, "torn writes never publish");

    // The merge is a pure read on a healthy filesystem — byte-identical
    // to the fault-free run, strict and best-effort alike.
    let merged = job.render_from_store(&ResultCache::new(&dir)).unwrap();
    assert_rendered_identical(&merged, &direct);
    let (best_effort, missing, total) = job
        .render_from_store_best_effort(&ResultCache::new(&dir))
        .unwrap();
    assert_eq!((missing > 0, total > 0), (false, true));
    assert_rendered_identical(&best_effort, &direct);

    // The health summary aggregates what actually happened and renders.
    let mut health = fabric_health(Some(cache), Some(&queue), Some(&drain));
    health.injected_faults = faults.injected();
    let line = health.to_string();
    assert!(
        line.starts_with("healthy:") || line.starts_with("degraded:"),
        "unexpected health line: {line}"
    );
    assert!(line.contains("injected"), "chaos runs report fault counts");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn best_effort_merge_renders_partial_sweeps_with_missing_cells() {
    let dir = tmp_store("best-effort");
    let job = SweepJob::new("fig12", quick(), 1, SeedPolicy::SpecSeed).unwrap();
    job.execute_shard(
        Shard::new(0, 3),
        &SweepRunner::serial().with_cache_dir(&dir),
    )
    .unwrap();

    // The strict merge refuses a partial store outright...
    let store = ResultCache::new(&dir);
    match job.render_from_store(&store) {
        Err(ServiceError::MissingCells { missing, total, .. }) => {
            assert!(!missing.is_empty() && missing.len() < total);
        }
        other => panic!("partial store must report missing cells, got {other:?}"),
    }

    // ...while best-effort renders every table, labels the shortfall in
    // the title and prints `(missing)` — never a fabricated number —
    // in the absent cells.
    let (tables, missing, total) = job.render_from_store_best_effort(&store).unwrap();
    assert!(missing > 0 && missing < total, "{missing}/{total}");
    let JobTables::Single(tables) = &tables else {
        panic!("fig12 renders plain tables");
    };
    let suffix = format!("[best-effort: {missing}/{total} cells missing]");
    for table in tables {
        assert!(
            table.title.ends_with(&suffix),
            "title {:?} lacks the shortfall label",
            table.title
        );
    }
    let text: String = tables.iter().map(|t| t.to_string()).collect();
    assert!(text.contains("(missing)"), "absent cells render as such");
    assert!(!text.contains("NaN"), "NaN never leaks into the rendering");
    std::fs::remove_dir_all(&dir).ok();
}
