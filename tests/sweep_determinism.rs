//! Sweep-parallelism determinism: the same `ScenarioSpec` grid must
//! produce byte-identical `Table` output whether its cells run on one
//! thread or four — cell results are collected by index and every cell
//! owns its own seeded simulation, so thread scheduling can never leak
//! into the figures. The same invariant extends to the sweep service:
//! one process, N `--shard i/N` processes, or a fleet of queue workers
//! must merge to byte-identical tables.

use a4::experiments::service::ServiceError;
use a4::experiments::{
    fig11, fig12, fig13, JobQueue, JobTables, ResultCache, RunOpts, SeedPolicy, Shard, SweepJob,
    SweepRunner, Task,
};
use std::path::PathBuf;

fn quick() -> RunOpts {
    RunOpts {
        warmup: 1,
        measure: 2,
        seed: 0xA4,
    }
}

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a4-sweep-det-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Asserts two rendered jobs are byte-identical in both renderings
/// (display text and JSON), not merely structurally equal.
fn assert_rendered_identical(a: &JobTables, b: &JobTables) {
    assert_eq!(a, b);
    let (JobTables::Single(ta), JobTables::Single(tb)) = (a, b) else {
        panic!("single-replica jobs render plain tables");
    };
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!(x.to_string(), y.to_string());
        assert_eq!(
            serde_json::to_string(x).unwrap(),
            serde_json::to_string(y).unwrap()
        );
    }
}

#[test]
fn fig12_tables_are_identical_across_thread_counts() {
    let opts = quick();
    let serial = fig12::run_with(&opts, &SweepRunner::serial());
    let parallel = fig12::run_with(&opts, &SweepRunner::with_threads(4));
    // Byte-identical in both renderings.
    assert_eq!(serial.to_string(), parallel.to_string());
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn fig13_tables_are_identical_across_thread_counts() {
    let opts = quick();
    let serial = fig13::run_with(&opts, true, &SweepRunner::serial());
    let parallel = fig13::run_with(&opts, true, &SweepRunner::with_threads(4));
    assert_eq!(serial.to_string(), parallel.to_string());
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn sharded_execution_merges_byte_identical_to_direct() {
    let dir = tmp_store("shards");
    let job = SweepJob::new("fig12", quick(), 1, SeedPolicy::SpecSeed).unwrap();

    // Reference: the direct, single-process, cache-less path.
    let direct = job.execute(&SweepRunner::serial()).unwrap();

    // Sharded: three independent runner instances execute their slices
    // out of order against the shared store. After only one shard the
    // merge must refuse (partial sweep), not quietly simulate the rest.
    let store = ResultCache::new(&dir);
    let shard_runner = || SweepRunner::with_threads(2).with_cache_dir(&dir);
    job.execute_shard(Shard::new(2, 3), &shard_runner())
        .unwrap();
    match job.render_from_store(&store) {
        Err(ServiceError::MissingCells { missing, total, .. }) => {
            assert!(!missing.is_empty() && missing.len() < total);
        }
        other => panic!("partial store must report missing cells, got {other:?}"),
    }
    job.execute_shard(Shard::new(0, 3), &shard_runner())
        .unwrap();
    job.execute_shard(Shard::new(1, 3), &shard_runner())
        .unwrap();

    // The merge is a pure read of the store — byte-identical to direct.
    let merged = job.render_from_store(&store).unwrap();
    assert_eq!(store.simulated(), 0, "merge never simulates");
    assert_rendered_identical(&merged, &direct);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_workers_drain_to_identical_tables() {
    let dir = tmp_store("queue");
    let job = SweepJob::new("fig4", quick(), 1, SeedPolicy::SpecSeed).unwrap();
    let direct = job.execute(&SweepRunner::serial()).unwrap();

    // Enqueue the job as two shard tasks and drain them with two
    // alternating "workers", exactly like `a4-repro --worker` does.
    let queue = JobQueue::open(&dir).unwrap();
    for index in 0..2 {
        queue
            .enqueue(&Task {
                job: job.clone(),
                shard: Shard::new(index, 2),
            })
            .unwrap();
    }
    let mut drained = 0;
    loop {
        let worker = if drained % 2 == 0 { "w1" } else { "w2" };
        let Some(lease) = queue.claim(worker).unwrap() else {
            break;
        };
        let runner = SweepRunner::serial().with_cache_dir(&dir);
        lease
            .task
            .job
            .execute_shard(lease.task.shard, &runner)
            .unwrap();
        queue.complete(lease).unwrap();
        drained += 1;
    }
    assert_eq!(drained, 2, "both shard tasks executed");
    assert_eq!(queue.counts().unwrap(), (0, 0, 2));

    // Re-executing a completed shard (a restarted worker, a re-claimed
    // stale lease) is idempotent: every cell loads from the store.
    let rerun = SweepRunner::serial().with_cache_dir(&dir);
    job.execute_shard(Shard::new(0, 2), &rerun).unwrap();
    assert_eq!(rerun.cache().unwrap().simulated(), 0, "re-execution loads");

    let merged = job.render_from_store(&ResultCache::new(&dir)).unwrap();
    assert_rendered_identical(&merged, &direct);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversubscribed_runner_is_still_deterministic() {
    // More threads than cells, and a weird thread count.
    let opts = quick();
    let specs = fig11::specs(&opts);
    let serial = SweepRunner::serial().run_specs(&specs).unwrap();
    let wide = SweepRunner::with_threads(64).run_specs(&specs).unwrap();
    let odd = SweepRunner::with_threads(3).run_specs(&specs).unwrap();
    for ((a, b), c) in serial.iter().zip(&wide).zip(&odd) {
        for binding in &a.workloads {
            let pa = a.perf(&binding.role);
            assert_eq!(pa, b.perf(&binding.role), "64 threads: {}", binding.role);
            assert_eq!(pa, c.perf(&binding.role), "3 threads: {}", binding.role);
        }
    }
}
