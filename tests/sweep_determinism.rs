//! Sweep-parallelism determinism: the same `ScenarioSpec` grid must
//! produce byte-identical `Table` output whether its cells run on one
//! thread or four — cell results are collected by index and every cell
//! owns its own seeded simulation, so thread scheduling can never leak
//! into the figures.

use a4::experiments::{fig11, fig12, fig13, RunOpts, SweepRunner};

fn quick() -> RunOpts {
    RunOpts {
        warmup: 1,
        measure: 2,
        seed: 0xA4,
    }
}

#[test]
fn fig12_tables_are_identical_across_thread_counts() {
    let opts = quick();
    let serial = fig12::run_with(&opts, &SweepRunner::serial());
    let parallel = fig12::run_with(&opts, &SweepRunner::with_threads(4));
    // Byte-identical in both renderings.
    assert_eq!(serial.to_string(), parallel.to_string());
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn fig13_tables_are_identical_across_thread_counts() {
    let opts = quick();
    let serial = fig13::run_with(&opts, true, &SweepRunner::serial());
    let parallel = fig13::run_with(&opts, true, &SweepRunner::with_threads(4));
    assert_eq!(serial.to_string(), parallel.to_string());
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap()
    );
}

#[test]
fn oversubscribed_runner_is_still_deterministic() {
    // More threads than cells, and a weird thread count.
    let opts = quick();
    let specs = fig11::specs(&opts);
    let serial = SweepRunner::serial().run_specs(&specs).unwrap();
    let wide = SweepRunner::with_threads(64).run_specs(&specs).unwrap();
    let odd = SweepRunner::with_threads(3).run_specs(&specs).unwrap();
    for ((a, b), c) in serial.iter().zip(&wide).zip(&odd) {
        for binding in &a.workloads {
            let pa = a.perf(&binding.role);
            assert_eq!(pa, b.perf(&binding.role), "64 threads: {}", binding.role);
            assert_eq!(pa, c.perf(&binding.role), "3 threads: {}", binding.role);
        }
    }
}
