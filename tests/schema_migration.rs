//! Scenario schema versioning: dumps from older builds keep loading.
//!
//! The `schema` field was introduced at v2 (when the NUMA fields —
//! `sockets`, `upi_ns`, `socket_dca_ways`, per-device `socket` — were
//! added); v3 added the link-capacity and buffer-homing fields
//! (`SystemTweaks.upi_gbps`, `Placement.buffer_home`). Older dumps have
//! none of those keys; `#[serde(default)]` fills them with the
//! semantics those specs actually had (unthrottled links, buffers homed
//! with their cores), and [`ScenarioSpec::migrate`] stamps the current
//! version. Anything newer than this build is rejected instead of
//! silently misread.

use a4::experiments::spec::SCHEMA_VERSION;
use a4::experiments::{spec_key, RunOpts, ScenarioSpec, WorkloadSpec};
use a4::model::Priority;

/// A literal pre-NUMA dump: exactly the JSON a v1 `a4-repro
/// --dump-specs` produced — no `schema`, no `system.sockets` /
/// `system.upi_ns` / `system.socket_dca_ways`, no per-device `socket`.
/// Frozen by hand; regenerating it from current code would defeat the
/// regression.
const V1_FIXTURE: &str = r#"{
  "name": "v1 fixture dpdk+xmem",
  "system": { "cores": null, "dca_ways": null, "mem_channels": null },
  "devices": [
    {
      "name": "nic",
      "port": 0,
      "device": { "Nic": { "rings": 2, "packet_bytes": 1024, "burst_amplitude": null } }
    }
  ],
  "workloads": [
    {
      "role": "dpdk",
      "workload": { "Dpdk": { "device": "nic", "touch": true } },
      "cores": [0, 1],
      "priority": "High",
      "metric": "Ops"
    },
    {
      "role": "xmem",
      "workload": { "XMem": { "instance": 1 } },
      "cores": [2],
      "priority": "Low",
      "metric": "Ipc"
    }
  ],
  "cat": [],
  "global_dca": true,
  "dca": [],
  "scheme": null,
  "thresholds": null,
  "opts": { "warmup": 1, "measure": 2, "seed": 164 }
}"#;

/// The same scenario written against today's API — the semantics the
/// migrated v1 dump must land on.
fn current_equivalent() -> ScenarioSpec {
    ScenarioSpec::new(
        "v1 fixture dpdk+xmem",
        RunOpts {
            warmup: 1,
            measure: 2,
            seed: 0xA4,
        },
    )
    .with_nic(2, 1024)
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1],
        Priority::High,
    )
    .with_workload(
        "xmem",
        WorkloadSpec::XMem { instance: 1 },
        &[2],
        Priority::Low,
    )
}

#[test]
fn v1_dump_loads_migrates_and_equals_the_current_spec() {
    let spec = ScenarioSpec::from_json(V1_FIXTURE).expect("v1 dumps keep loading");
    assert_eq!(spec.schema, SCHEMA_VERSION);
    // The absent NUMA fields default to the v1 semantics.
    assert_eq!(spec.system.sockets, None);
    assert_eq!(spec.system.upi_ns, None);
    assert_eq!(spec.system.upi_gbps, None);
    assert!(spec.system.socket_dca_ways.is_empty());
    assert!(spec.devices.iter().all(|d| d.socket == 0));
    assert!(spec.workloads.iter().all(|p| p.buffer_home.is_none()));
    spec.validate().expect("migrated spec is valid");
    // Field-for-field identical to the spec today's builder produces,
    // so it hits the same content-addressed store entries.
    let current = current_equivalent();
    assert_eq!(spec, current);
    assert_eq!(spec_key(&spec), spec_key(&current));
}

#[test]
fn v1_dump_still_runs() {
    let spec = ScenarioSpec::from_json(V1_FIXTURE).expect("v1 dumps keep loading");
    let run = spec.build().expect("migrated spec builds").run();
    assert!(run.report.total_instructions_all() > 0);
    assert!(run.ipc("xmem") > 0.0);
}

/// Wraps the v1 fixture body with an explicit schema stamp.
fn with_schema(version: u32) -> String {
    V1_FIXTURE.replacen('{', &format!("{{\n  \"schema\": {version},"), 1)
}

#[test]
fn schema_versions_migrate_or_reject() {
    // (json, expected schema after migration; None = must be rejected)
    let cases: Vec<(String, Option<u32>)> = vec![
        // v0: pre-versioning dump without a schema key.
        (V1_FIXTURE.to_string(), Some(SCHEMA_VERSION)),
        (with_schema(0), Some(SCHEMA_VERSION)),
        (with_schema(1), Some(SCHEMA_VERSION)),
        // v2: NUMA fields present in the vocabulary but none of the v3
        // link-capacity / buffer-homing keys.
        (with_schema(2), Some(SCHEMA_VERSION)),
        (with_schema(SCHEMA_VERSION), Some(SCHEMA_VERSION)),
        (with_schema(SCHEMA_VERSION + 1), None),
        (with_schema(99), None),
    ];
    for (i, (json, expect)) in cases.iter().enumerate() {
        match (ScenarioSpec::from_json(json), expect) {
            (Ok(spec), Some(version)) => {
                assert_eq!(spec.schema, *version, "case {i}");
                spec.validate().unwrap_or_else(|e| panic!("case {i}: {e}"));
            }
            (Err(_), None) => {}
            (Ok(spec), None) => panic!("case {i}: schema v{} must be rejected", spec.schema),
            (Err(e), Some(_)) => panic!("case {i}: must load, got {e}"),
        }
    }
}

#[test]
fn future_schema_fails_validation_even_unmigrated() {
    // A future-versioned spec smuggled in without from_json (e.g.
    // deserialized as part of a larger structure) still cannot run.
    let json = with_schema(SCHEMA_VERSION + 1);
    let spec: ScenarioSpec = serde_json::from_str(&json).expect("parses structurally");
    assert!(
        spec.validate().is_err(),
        "validate must reject future schemas"
    );
    assert!(
        spec.migrate().is_err(),
        "migrate must reject future schemas"
    );
}
