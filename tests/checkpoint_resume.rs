//! Differential checkpoint/resume property tests.
//!
//! The contract under test ([`a4::sim::System::save_state`]): restoring
//! a snapshot into a *process-equivalent* system — built fresh from the
//! same spec, same attach/registration history — and continuing is
//! bit-identical to never having stopped. The checkpoint quantum is
//! drawn at random, so snapshots land mid-sample-interval with device
//! DMA in flight, and a CAT reprogramming after the resume point proves
//! the restored state reacts identically to subsequent mutations.
//!
//! The corrupt-checkpoint tests pin the staleness policy of the on-disk
//! store ([`a4::experiments::CkptStore`]): a truncated or bit-flipped
//! entry is discarded and counted stale — the resume path restarts from
//! quantum 0 — and bad state is never served.

use a4::experiments::spec::SystemTweaks;
use a4::experiments::{
    spec_key, CellCkpt, CkptStore, RunOpts, ScenarioSpec, WorkloadSpec, CELL_CKPT_VERSION,
};
use a4::model::{ClosId, Priority, WayMask};
use a4::sim::{System, SystemState, SYSTEM_CKPT_VERSION};
use proptest::prelude::*;
use std::path::PathBuf;

/// Total quanta each differential run covers: 2.2 logical seconds on
/// the production config (1000 quanta/second), so every run crosses at
/// least two sample-interval boundaries.
const TOTAL_QUANTA: u64 = 2200;

/// The scenario vocabulary the checkpoint sweep draws from: a trimmed
/// colocation — DPDK on a NIC, FIO on an NVMe SSD (both with DMA in
/// flight from the first quantum), X-Mem as the cache antagonist — once
/// plain, once with a static CAT partition programmed at build time,
/// once on a two-socket NUMA topology, and once on a four-socket
/// capacity-limited fabric with a remote-homed streamer (per-link
/// queueing factors, interval counters and the requester cache all
/// carry live state into the snapshot). The full-size microbench mix
/// exercises the same checkpoint code paths but costs several times
/// more per quantum, which a property test has no need for.
fn spec_variant(variant: u8, seed: u64) -> ScenarioSpec {
    let opts = RunOpts {
        warmup: 1,
        measure: 2,
        seed,
    };
    let spec = ScenarioSpec::new(format!("ckpt-v{variant}"), opts)
        .with_nic(2, 256)
        .with_ssd()
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: false,
            },
            &[0],
            Priority::High,
        )
        .with_workload(
            "fio",
            WorkloadSpec::Fio {
                device: "ssd".into(),
                block_kib: 64,
            },
            &[1],
            Priority::Low,
        )
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[2],
            Priority::Low,
        );
    match variant {
        0 => spec,
        1 => spec.with_cat(
            1,
            WayMask::from_paper_range(0, 3).expect("static"),
            &["dpdk", "fio"],
        ),
        2 => spec.with_system(SystemTweaks::two_socket(None)),
        _ => spec
            .with_system(SystemTweaks {
                sockets: Some(a4::model::MAX_SOCKETS),
                upi_gbps: Some(16.0),
                ..SystemTweaks::none()
            })
            .with_workload_on_homed(
                0,
                2,
                "rstream",
                WorkloadSpec::XMem { instance: 1 },
                &[3],
                Priority::Low,
            ),
    }
}

/// Drives `sys` from its current quantum to `TOTAL_QUANTA`, applying
/// the mid-run CAT reprogramming at quantum `reprogram_at`, and returns
/// the run's observable fingerprint. Both the uninterrupted reference
/// and the restored system go through this exact function, so any
/// divergence is the checkpoint's fault.
fn finish_run(sys: &mut System, reprogram_at: u64, dpdk: a4::model::WorkloadId) -> (String, u64) {
    if sys.quantum_count() < reprogram_at {
        sys.run_quanta(reprogram_at - sys.quantum_count());
        sys.cat_set_mask(ClosId(2), WayMask::from_paper_range(4, 8).expect("static"))
            .expect("valid mask");
        sys.cat_assign_workload(dpdk, ClosId(2))
            .expect("registered workload");
    }
    sys.run_quanta(TOTAL_QUANTA - sys.quantum_count());
    let sample = sys.sample();
    let json = serde_json::to_string(&sample).expect("sample serializes");
    (json, sys.rng_probe())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint at a random quantum, serialize through JSON, restore
    /// into a fresh process-equivalent system, continue — every
    /// observable (sample stats, RNG stream, clock) must be
    /// bit-identical to the uninterrupted reference.
    #[test]
    fn restore_and_continue_is_bit_identical(
        variant in 0u8..4,
        seed in 0u64..1_000_000,
        ckpt_at in 50u64..2_000,
    ) {
        // Not aligned to the 1000-quantum sample interval in the
        // overwhelming majority of draws; devices have DMA in flight
        // from the first quantum on.
        let reprogram_at = (ckpt_at + 137).min(TOTAL_QUANTA - 1);

        // Reference: never stops.
        let mut reference = spec_variant(variant, seed).build().expect("spec builds");
        let dpdk = reference.workload("dpdk");
        reference.harness.system_mut().run_quanta(ckpt_at);
        let expect = finish_run(reference.harness.system_mut(), reprogram_at, dpdk);

        // Checkpointed: run to the same quantum, snapshot, round-trip
        // the snapshot through JSON (exactly what the on-disk store
        // does), drop the original, restore into a fresh build.
        let mut first = spec_variant(variant, seed).build().expect("spec builds");
        first.harness.system_mut().run_quanta(ckpt_at);
        let json = serde_json::to_string(&first.harness.system().save_state())
            .expect("snapshot serializes");
        drop(first);
        let st: SystemState = serde_json::from_str(&json).expect("snapshot parses");
        prop_assert_eq!(st.version, SYSTEM_CKPT_VERSION);
        let mut resumed = spec_variant(variant, seed).build().expect("spec builds");
        prop_assert!(
            resumed.harness.system_mut().restore_state(&st),
            "a process-equivalent system must accept its own snapshot"
        );
        prop_assert_eq!(resumed.harness.system().quantum_count(), ckpt_at);
        let got = finish_run(resumed.harness.system_mut(), reprogram_at, dpdk);

        prop_assert_eq!(&got.0, &expect.0, "sample stats diverged after resume");
        prop_assert_eq!(got.1, expect.1, "RNG stream diverged after resume");
    }

    /// A snapshot must never restore into a system it does not fit:
    /// version skew and topology mismatch are rejected without touching
    /// the target's state.
    #[test]
    fn mismatched_snapshots_are_rejected_without_mutation(
        seed in 0u64..1_000_000,
        ckpt_at in 50u64..500,
    ) {
        let mut donor = spec_variant(0, seed).build().expect("spec builds");
        donor.harness.system_mut().run_quanta(ckpt_at);
        let good = donor.harness.system().save_state();

        let mut skewed = good.clone();
        skewed.version = SYSTEM_CKPT_VERSION + 1;
        let mut target = spec_variant(0, seed).build().expect("spec builds");
        let before = (
            target.harness.system().rng_probe(),
            target.harness.system().quantum_count(),
        );
        prop_assert!(!target.harness.system_mut().restore_state(&skewed));
        // Pre-bump snapshots (no fabric, no requester caches) must be
        // rejected by version, not half-restored.
        let mut stale = good.clone();
        stale.version = SYSTEM_CKPT_VERSION - 1;
        prop_assert!(!target.harness.system_mut().restore_state(&stale));
        // A two-socket system must reject a single-socket snapshot.
        let mut numa = spec_variant(2, seed).build().expect("spec builds");
        prop_assert!(!numa.harness.system_mut().restore_state(&good));
        // And the four-socket fabric (6 links, 4 requester caches) must
        // reject the two-socket snapshot (1 link, 2 caches).
        let mut quad = spec_variant(3, seed).build().expect("spec builds");
        let dual_state = {
            let mut dual = spec_variant(2, seed).build().expect("spec builds");
            dual.harness.system_mut().run_quanta(ckpt_at);
            dual.harness.system().save_state()
        };
        prop_assert!(!quad.harness.system_mut().restore_state(&dual_state));
        let after = (
            target.harness.system().rng_probe(),
            target.harness.system().quantum_count(),
        );
        prop_assert_eq!(before, after, "rejected restore must not mutate");
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("a4-ckpt-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A stored checkpoint for the variant-0 cell: what a supervised
/// worker writes after one completed logical second.
fn stored_ckpt(dir: &PathBuf) -> (CkptStore, String) {
    let spec = spec_variant(0, 0xA4);
    let key = spec_key(&spec);
    let mut scn = spec.build().expect("spec builds");
    scn.harness.system_mut().run_quanta(1_000);
    let store = CkptStore::new(dir);
    store.save(&CellCkpt {
        version: CELL_CKPT_VERSION,
        spec_key: key.clone(),
        seconds_done: 1,
        samples: Vec::new(),
        system: scn.harness.system().save_state(),
        policy: a4::core::PolicyState::Stateless,
    });
    assert_eq!(store.saved(), 1);
    assert!(store.load(&key).is_some(), "intact checkpoint is served");
    (store, key)
}

/// Truncated checkpoint files are stale, never served: the resume path
/// sees `None` and restarts the cell from quantum 0.
#[test]
fn truncated_checkpoints_restart_from_zero() {
    let dir = tmp_dir("truncated");
    let (store, key) = stored_ckpt(&dir);
    let path = dir.join(format!("{key}.ckpt.json"));
    let bytes = std::fs::read(&path).expect("checkpoint on disk");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    assert!(store.load(&key).is_none(), "torn state must not be served");
    assert_eq!(store.stale(), 1, "discard is counted");
    assert!(!path.exists(), "stale entry is removed, not retried");
    // The second look finds nothing at all: a fresh run from quantum 0.
    assert!(store.load(&key).is_none());
    assert_eq!(
        store.stale(),
        1,
        "a missing entry is not stale, just absent"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Bit flips inside the payload fail the checksum envelope: stale,
/// removed, never served.
#[test]
fn bit_flipped_checkpoints_restart_from_zero() {
    let dir = tmp_dir("bitflip");
    let (store, key) = stored_ckpt(&dir);
    let path = dir.join(format!("{key}.ckpt.json"));
    let mut bytes = std::fs::read(&path).expect("checkpoint on disk");
    // Flip one bit deep inside the serialized system state — the JSON
    // still parses, so only the checksum can catch it.
    let mid = bytes.len() / 2;
    let digit = bytes.iter().position(|b| *b == b'7').unwrap_or(mid);
    bytes[digit] = b'8';
    std::fs::write(&path, &bytes).unwrap();

    assert!(
        store.load(&key).is_none(),
        "corrupt state must not be served"
    );
    assert_eq!(store.stale(), 1);
    assert!(!path.exists(), "corrupt entry is removed");
    std::fs::remove_dir_all(&dir).ok();
}
