//! # A4 reproduction — facade crate
//!
//! This crate re-exports every component of the Rust reproduction of
//! *A4: Microarchitecture-Aware LLC Management for Datacenter Servers with
//! Emerging I/O Devices* (Park et al., ISCA 2025) under one roof, so
//! downstream users can depend on a single crate:
//!
//! * [`model`] — foundational types (way masks, ids, time, units).
//! * [`cache`] — the Skylake-style non-inclusive cache hierarchy with the
//!   inclusive-directory structure that causes the paper's (C1) contention.
//! * [`mem`] — the DRAM bandwidth/latency model.
//! * [`pcie`] — PCIe ports, the hidden `perfctrlsts_0` DCA knob, NIC and
//!   NVMe device models.
//! * [`sim`] — the full-system simulator with PCM-style counters.
//! * [`workloads`] — DPDK, FIO, X-Mem, Fastclick, FFSB, Redis and
//!   SPEC-CPU-like workload generators.
//! * [`core`] — the A4 runtime LLC-management framework itself, plus the
//!   Default and Isolate baselines.
//! * [`experiments`] — scenario builders reproducing every figure of the
//!   paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use a4::core::FeatureLevel;
//! use a4::experiments::{RunOpts, ScenarioSpec, Scheme};
//!
//! // Describe the paper's microbenchmark colocation (DPDK-T + FIO +
//! // X-Mem) declaratively, attach full A4 and run it.
//! let spec = ScenarioSpec::microbench(RunOpts::quick())
//!     .with_scheme(Scheme::A4(FeatureLevel::D));
//! let run = spec.build().unwrap().run();
//! assert!(run.report.total_instructions_all() > 0);
//! assert!(run.ipc("xmem1") > 0.0);
//! ```

pub use a4_cache as cache;
pub use a4_core as core;
pub use a4_experiments as experiments;
pub use a4_mem as mem;
pub use a4_model as model;
pub use a4_pcie as pcie;
pub use a4_sim as sim;
pub use a4_workloads as workloads;
